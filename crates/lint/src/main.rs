#![forbid(unsafe_code)]
//! The `jitsu-lint` binary: analyze the workspace, print diagnostics,
//! exit non-zero if anything — error or warning — was found.
//!
//! Usage: `jitsu-lint [WORKSPACE_ROOT] [--format text|sarif] [--fix]`.
//!
//! Without a root argument the workspace root is found by walking up from
//! the current directory to the first `Cargo.toml` that declares
//! `[workspace]`, so `cargo run -p lint` works from any subdirectory.
//! `--format sarif` writes a SARIF 2.1.0 document to stdout (the summary
//! still goes to stderr). `--fix` applies the machine-applicable subset of
//! fixes (R001/N001 scaffolds), rewrites the files in place, then re-lints
//! and reports what remains.

use lint::diagnostics::Severity;
use lint::{Config, Diagnostic};
use std::collections::BTreeMap;
use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

enum Format {
    Text,
    Sarif,
}

struct Args {
    root: PathBuf,
    format: Format,
    fix: bool,
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("jitsu-lint: {msg}");
            eprintln!("usage: jitsu-lint [WORKSPACE_ROOT] [--format text|sarif] [--fix]");
            return ExitCode::from(2);
        }
    };
    let cfg = Config::default();

    if args.fix {
        match apply_fixes(&args.root, &cfg) {
            Ok(n) => eprintln!("jitsu-lint: applied {n} fix(es)"),
            Err(e) => {
                eprintln!("jitsu-lint: fix failed: {e}");
                return ExitCode::from(2);
            }
        }
    }

    let diags = match lint::analyze_workspace(&args.root, &cfg) {
        Ok(d) => d,
        Err(e) => {
            eprintln!(
                "jitsu-lint: failed to read workspace at {}: {e}",
                args.root.display()
            );
            return ExitCode::from(2);
        }
    };
    match args.format {
        Format::Text => {
            for d in &diags {
                println!("{d}");
            }
        }
        Format::Sarif => {
            print!("{}", lint::sarif::to_sarif(&diags));
        }
    }
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diags.len() - errors;
    if diags.is_empty() {
        eprintln!("jitsu-lint: workspace clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("jitsu-lint: {errors} error(s), {warnings} warning(s)");
        ExitCode::FAILURE
    }
}

fn parse_args() -> Result<Args, String> {
    let mut root = None;
    let mut format = Format::Text;
    let mut fix = false;
    let mut argv = env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--format" => {
                format = match argv.next().as_deref() {
                    Some("text") => Format::Text,
                    Some("sarif") => Format::Sarif,
                    other => {
                        return Err(format!(
                            "unknown format {:?} (expected text or sarif)",
                            other.unwrap_or("<missing>")
                        ));
                    }
                };
            }
            "--fix" => fix = true,
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag {flag}"));
            }
            path => {
                if root.replace(PathBuf::from(path)).is_some() {
                    return Err("more than one workspace root given".to_string());
                }
            }
        }
    }
    Ok(Args {
        root: root.unwrap_or_else(find_workspace_root),
        format,
        fix,
    })
}

/// Apply every machine-applicable fix in the workspace, rewriting files in
/// place. Returns the number of fixes applied.
fn apply_fixes(root: &std::path::Path, cfg: &Config) -> std::io::Result<usize> {
    let diags = lint::analyze_workspace(root, cfg)?;
    let mut by_file: BTreeMap<&str, Vec<&Diagnostic>> = BTreeMap::new();
    for d in diags.iter().filter(|d| d.fix.is_some()) {
        by_file.entry(&d.file).or_default().push(d);
    }
    let mut applied = 0usize;
    for (rel, ds) in by_file {
        let path = root.join(rel);
        let source = std::fs::read_to_string(&path)?;
        let fixes: Vec<_> = ds.iter().filter_map(|d| d.fix.clone()).collect();
        let fixed = lint::fix::apply(&source, &fixes);
        if fixed != source {
            std::fs::write(&path, fixed)?;
            applied += fixes.len();
            for d in &ds {
                eprintln!(
                    "jitsu-lint: fixed {}:{} ({})",
                    d.file,
                    d.line,
                    d.fix.as_ref().map(|f| f.summary.as_str()).unwrap_or("")
                );
            }
        }
    }
    Ok(applied)
}

/// Walk up from the current directory to the first `[workspace]` manifest.
fn find_workspace_root() -> PathBuf {
    let mut dir = env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return dir;
                }
            }
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}
