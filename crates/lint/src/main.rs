#![forbid(unsafe_code)]
//! The `jitsu-lint` binary: analyze the workspace, print diagnostics,
//! exit non-zero if anything — error or warning — was found.
//!
//! Usage: `jitsu-lint [WORKSPACE_ROOT]`. Without an argument the workspace
//! root is found by walking up from the current directory to the first
//! `Cargo.toml` that declares `[workspace]`, so `cargo run -p lint` works
//! from any subdirectory.

use lint::diagnostics::Severity;
use lint::Config;
use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = match env::args().nth(1) {
        Some(arg) => PathBuf::from(arg),
        None => find_workspace_root(),
    };
    let cfg = Config::default();
    let diags = match lint::analyze_workspace(&root, &cfg) {
        Ok(d) => d,
        Err(e) => {
            eprintln!(
                "jitsu-lint: failed to read workspace at {}: {e}",
                root.display()
            );
            return ExitCode::from(2);
        }
    };
    for d in &diags {
        println!("{d}");
    }
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diags.len() - errors;
    if diags.is_empty() {
        eprintln!("jitsu-lint: workspace clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("jitsu-lint: {errors} error(s), {warnings} warning(s)");
        ExitCode::FAILURE
    }
}

/// Walk up from the current directory to the first `[workspace]` manifest.
fn find_workspace_root() -> PathBuf {
    let mut dir = env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return dir;
                }
            }
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}
