//! A minimal Rust lexer: just enough token structure for rule matching.
//!
//! The analyzer does not need a parse tree — every rule in the suite can be
//! phrased over a token stream as long as the lexer gets the hard parts of
//! Rust's lexical grammar right: nested block comments, string literals with
//! escapes, raw strings with arbitrary `#` fences, byte strings, char
//! literals vs. lifetimes, and raw identifiers. Everything else is an ident,
//! a number, or single-character punctuation.

/// The classes of token the rule engine distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`HashMap`, `for`, `unwrap`, ...).
    Ident,
    /// Numeric literal (split at `.`; `1.5` lexes as `1`, `.`, `5`).
    Number,
    /// String or byte-string literal (`"..."`, `b"..."`).
    Str,
    /// Raw string literal (`r"..."`, `br#"..."#`).
    RawStr,
    /// Character or byte-character literal (`'a'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Line comment; `text` holds everything after the `//`.
    LineComment,
    /// Block comment (nesting-aware); `text` holds the interior.
    BlockComment,
    /// Any other single character (`.`, `:`, `{`, `#`, ...).
    Punct,
}

/// One token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    pub line: u32,
    pub col: u32,
}

impl Token {
    /// Is this an identifier with exactly this spelling?
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// Is this the given punctuation character?
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// Is this a comment of either flavour?
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

struct Cursor {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
}

impl Cursor {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenize `source`, preserving comments (the waiver grammar lives there).
///
/// The lexer is total: malformed input (an unterminated string, a stray
/// quote) degrades to best-effort tokens rather than an error, because the
/// analyzer must keep producing diagnostics for the rest of the file.
pub fn lex(source: &str) -> Vec<Token> {
    let mut cur = Cursor {
        chars: source.chars().collect(),
        i: 0,
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();

    while let Some(c) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        let token = match c {
            '/' if cur.peek(1) == Some('/') => lex_line_comment(&mut cur),
            '/' if cur.peek(1) == Some('*') => lex_block_comment(&mut cur),
            '"' => lex_string(&mut cur),
            'r' | 'b' => lex_r_or_b(&mut cur),
            '\'' => lex_quote(&mut cur),
            _ if is_ident_start(c) => lex_ident(&mut cur),
            _ if c.is_ascii_digit() => lex_number(&mut cur),
            _ => {
                cur.bump();
                (TokenKind::Punct, c.to_string())
            }
        };
        out.push(Token {
            kind: token.0,
            text: token.1,
            line,
            col,
        });
    }
    out
}

fn lex_line_comment(cur: &mut Cursor) -> (TokenKind, String) {
    cur.bump();
    cur.bump(); // consume `//`
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if c == '\n' {
            break;
        }
        text.push(c);
        cur.bump();
    }
    (TokenKind::LineComment, text)
}

fn lex_block_comment(cur: &mut Cursor) -> (TokenKind, String) {
    cur.bump();
    cur.bump(); // consume `/*`
    let mut depth = 1usize;
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if c == '/' && cur.peek(1) == Some('*') {
            depth += 1;
            text.push_str("/*");
            cur.bump();
            cur.bump();
        } else if c == '*' && cur.peek(1) == Some('/') {
            depth -= 1;
            cur.bump();
            cur.bump();
            if depth == 0 {
                break;
            }
            text.push_str("*/");
        } else {
            text.push(c);
            cur.bump();
        }
    }
    (TokenKind::BlockComment, text)
}

fn lex_string(cur: &mut Cursor) -> (TokenKind, String) {
    cur.bump(); // opening `"`
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if c == '\\' {
            text.push(c);
            cur.bump();
            if let Some(e) = cur.bump() {
                text.push(e);
            }
        } else if c == '"' {
            cur.bump();
            break;
        } else {
            text.push(c);
            cur.bump();
        }
    }
    (TokenKind::Str, text)
}

/// Raw string bodies end at a `"` followed by the same number of `#`s that
/// opened them; there are no escapes inside.
fn lex_raw_string(cur: &mut Cursor, hashes: usize) -> (TokenKind, String) {
    cur.bump(); // opening `"`
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if c == '"' && (1..=hashes).all(|k| cur.peek(k) == Some('#')) {
            cur.bump();
            for _ in 0..hashes {
                cur.bump();
            }
            break;
        }
        text.push(c);
        cur.bump();
    }
    (TokenKind::RawStr, text)
}

/// Disambiguate the `r` / `b` / `br` / `rb` prefixes: raw string, byte
/// string, byte char, raw identifier — or a plain identifier that merely
/// starts with one of those letters.
fn lex_r_or_b(cur: &mut Cursor) -> (TokenKind, String) {
    let c = cur.peek(0).unwrap_or('r');
    // `b"..."` byte string and `b'x'` byte char.
    if c == 'b' {
        match cur.peek(1) {
            Some('"') => {
                cur.bump();
                return lex_string(cur);
            }
            Some('\'') => {
                cur.bump();
                return lex_quote(cur);
            }
            Some('r') => {
                // `br#*"` raw byte string.
                let mut hashes = 0;
                while cur.peek(2 + hashes) == Some('#') {
                    hashes += 1;
                }
                if cur.peek(2 + hashes) == Some('"') {
                    cur.bump();
                    cur.bump();
                    for _ in 0..hashes {
                        cur.bump();
                    }
                    return lex_raw_string(cur, hashes);
                }
            }
            _ => {}
        }
        return lex_ident(cur);
    }
    // `r#*"` raw string; `r#ident` raw identifier.
    let mut hashes = 0;
    while cur.peek(1 + hashes) == Some('#') {
        hashes += 1;
    }
    if cur.peek(1 + hashes) == Some('"') {
        cur.bump();
        for _ in 0..hashes {
            cur.bump();
        }
        return lex_raw_string(cur, hashes);
    }
    if hashes == 1 && cur.peek(2).is_some_and(is_ident_start) {
        cur.bump();
        cur.bump(); // consume `r#`; the ident text is the unprefixed name
        return lex_ident(cur);
    }
    lex_ident(cur)
}

/// A `'` opens either a char literal or a lifetime.
fn lex_quote(cur: &mut Cursor) -> (TokenKind, String) {
    cur.bump(); // the `'`
    match cur.peek(0) {
        // Escaped char: consume to the closing quote.
        Some('\\') => {
            let mut text = String::new();
            while let Some(c) = cur.peek(0) {
                if c == '\\' {
                    text.push(c);
                    cur.bump();
                    if let Some(e) = cur.bump() {
                        text.push(e);
                    }
                } else if c == '\'' {
                    cur.bump();
                    break;
                } else {
                    text.push(c);
                    cur.bump();
                }
            }
            (TokenKind::Char, text)
        }
        // `'x'` — exactly one char then a closing quote.
        Some(x) if cur.peek(1) == Some('\'') && x != '\'' => {
            cur.bump();
            cur.bump();
            (TokenKind::Char, x.to_string())
        }
        // `'ident` — a lifetime.
        Some(x) if is_ident_start(x) => {
            let mut text = String::new();
            while let Some(c) = cur.peek(0) {
                if !is_ident_continue(c) {
                    break;
                }
                text.push(c);
                cur.bump();
            }
            (TokenKind::Lifetime, text)
        }
        // Stray quote: emit as punctuation and move on.
        _ => (TokenKind::Punct, "'".to_string()),
    }
}

fn lex_ident(cur: &mut Cursor) -> (TokenKind, String) {
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if !is_ident_continue(c) {
            break;
        }
        text.push(c);
        cur.bump();
    }
    (TokenKind::Ident, text)
}

fn lex_number(cur: &mut Cursor) -> (TokenKind, String) {
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if !is_ident_continue(c) {
            break;
        }
        text.push(c);
        cur.bump();
    }
    (TokenKind::Number, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_punct() {
        let ts = kinds("let x = foo.bar();");
        assert_eq!(ts[0], (TokenKind::Ident, "let".into()));
        assert_eq!(ts[1], (TokenKind::Ident, "x".into()));
        assert_eq!(ts[2], (TokenKind::Punct, "=".into()));
        assert_eq!(ts[3], (TokenKind::Ident, "foo".into()));
        assert_eq!(ts[4], (TokenKind::Punct, ".".into()));
        assert_eq!(ts[5], (TokenKind::Ident, "bar".into()));
    }

    #[test]
    fn strings_hide_their_contents_from_ident_matching() {
        let ts = kinds(r#"let s = "HashMap::iter() // not a comment";"#);
        assert!(ts
            .iter()
            .all(|(k, text)| { *k != TokenKind::Ident || (text != "HashMap" && text != "iter") }));
        assert!(ts.iter().any(|(k, _)| *k == TokenKind::Str));
    }

    #[test]
    fn raw_strings_with_fences() {
        let ts = kinds(r###"let s = r#"a "quoted" thing"#; let t = 1;"###);
        assert!(ts
            .iter()
            .any(|(k, text)| *k == TokenKind::RawStr && text == "a \"quoted\" thing"));
        // Lexing continued past the raw string.
        assert!(ts.iter().any(|(_, text)| text == "t"));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let ts = kinds(r##"let a = b"bytes"; let c = b'\n'; let r = br#"raw"#;"##);
        assert_eq!(
            ts.iter().filter(|(k, _)| *k == TokenKind::Str).count(),
            1,
            "one byte string"
        );
        assert!(ts.iter().any(|(k, _)| *k == TokenKind::Char));
        assert!(ts.iter().any(|(k, _)| *k == TokenKind::RawStr));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let ts = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let e = '\\n'; }");
        assert_eq!(
            ts.iter().filter(|(k, _)| *k == TokenKind::Lifetime).count(),
            2
        );
        assert_eq!(ts.iter().filter(|(k, _)| *k == TokenKind::Char).count(), 2);
    }

    #[test]
    fn nested_block_comments() {
        let ts = kinds("a /* outer /* inner */ still outer */ b");
        assert_eq!(ts.len(), 3);
        assert_eq!(ts[1].0, TokenKind::BlockComment);
        assert_eq!(ts[2], (TokenKind::Ident, "b".into()));
    }

    #[test]
    fn line_comment_text_is_preserved() {
        let ts = kinds("x // jitsu-lint: allow(D001, \"why\")\ny");
        assert_eq!(
            ts[1],
            (
                TokenKind::LineComment,
                " jitsu-lint: allow(D001, \"why\")".into()
            )
        );
    }

    #[test]
    fn positions_are_one_based_lines_and_cols() {
        let ts = lex("ab\n  cd");
        assert_eq!((ts[0].line, ts[0].col), (1, 1));
        assert_eq!((ts[1].line, ts[1].col), (2, 3));
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        let ts = kinds("let r#type = 1;");
        assert!(ts
            .iter()
            .any(|(k, text)| *k == TokenKind::Ident && text == "type"));
    }
}
