//! The in-source waiver grammar.
//!
//! A violation is silenced with a line comment of the form
//!
//! ```text
//! // jitsu-lint: allow(RULE, "reason")
//! ```
//!
//! either *trailing* on the offending line or *standalone* on a line of its
//! own, in which case it applies to the next line that holds code (so
//! waivers for different rules stack above one statement). The reason is
//! mandatory and non-empty — a waiver is documentation, and an undocumented
//! waiver is itself an error (`W001`). Waiving an unknown rule is an error
//! (`W002`); a waiver that silences nothing is a warning (`W003`), so stale
//! waivers cannot accumulate silently.

use crate::config::Config;
use crate::diagnostics::Diagnostic;
use crate::lexer::Token;

/// A syntactically valid waiver, resolved to the line it governs.
#[derive(Debug, Clone)]
pub struct Waiver {
    pub rule: String,
    pub reason: String,
    /// Line/col of the waiver comment itself (for W003 reporting).
    pub line: u32,
    pub col: u32,
    /// The source line whose findings this waiver silences. `None` when a
    /// standalone waiver has no code line after it (always unused).
    pub target_line: Option<u32>,
}

/// Scan the token stream for waiver comments. Returns the valid waivers and
/// any grammar errors found along the way.
pub fn collect(file: &str, tokens: &[Token]) -> (Vec<Waiver>, Vec<Diagnostic>) {
    // Lines that hold at least one non-comment token, and the first column
    // of any token per line (to tell trailing waivers from standalone ones).
    let mut code_lines: Vec<u32> = Vec::new();
    for t in tokens {
        if !t.is_comment() {
            code_lines.push(t.line);
        }
    }
    code_lines.sort_unstable();
    code_lines.dedup();

    let mut waivers = Vec::new();
    let mut diags = Vec::new();

    for t in tokens {
        if t.kind != crate::lexer::TokenKind::LineComment {
            continue;
        }
        let body = t.text.trim();
        let Some(rest) = body.strip_prefix("jitsu-lint:") else {
            continue;
        };
        match parse_allow(rest.trim()) {
            Ok((rule, reason)) => {
                if !Config::is_known_rule(&rule) {
                    diags.push(Diagnostic::error(
                        file,
                        t.line,
                        t.col,
                        "W002",
                        format!("waiver names unknown rule `{rule}`"),
                    ));
                    continue;
                }
                // Trailing if any code token shares the waiver's line;
                // otherwise it governs the next code-bearing line.
                let trailing = code_lines.binary_search(&t.line).is_ok();
                let target_line = if trailing {
                    Some(t.line)
                } else {
                    code_lines.iter().copied().find(|&l| l > t.line)
                };
                waivers.push(Waiver {
                    rule,
                    reason,
                    line: t.line,
                    col: t.col,
                    target_line,
                });
            }
            Err(msg) => {
                diags.push(Diagnostic::error(file, t.line, t.col, "W001", msg));
            }
        }
    }
    (waivers, diags)
}

/// Parse `allow(RULE, "reason")`. Returns `(rule, reason)` or an error
/// message describing what is malformed.
fn parse_allow(s: &str) -> Result<(String, String), String> {
    const SHAPE: &str = "expected `jitsu-lint: allow(RULE, \"reason\")`";
    let inner = s
        .strip_prefix("allow(")
        .and_then(|r| r.trim_end().strip_suffix(')'))
        .ok_or_else(|| format!("malformed waiver: {SHAPE}"))?;
    let (rule, rest) = inner
        .split_once(',')
        .ok_or_else(|| format!("waiver is missing a reason: {SHAPE}"))?;
    let rule = rule.trim();
    if rule.is_empty() || !rule.chars().all(|c| c.is_ascii_alphanumeric()) {
        return Err(format!("malformed waiver rule name `{}`: {SHAPE}", rule));
    }
    let reason = rest.trim();
    let reason = reason
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .ok_or_else(|| format!("waiver reason must be a quoted string: {SHAPE}"))?;
    if reason.trim().is_empty() {
        return Err(
            "waiver has an empty reason: a waiver must document why the \
                    violation is acceptable"
                .to_string(),
        );
    }
    Ok((rule.to_string(), reason.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn trailing_waiver_targets_its_own_line() {
        let src = "let x = m.iter(); // jitsu-lint: allow(D001, \"sorted downstream\")\n";
        let (ws, ds) = collect("f.rs", &lex(src));
        assert!(ds.is_empty());
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].rule, "D001");
        assert_eq!(ws[0].reason, "sorted downstream");
        assert_eq!(ws[0].target_line, Some(1));
    }

    #[test]
    fn standalone_waivers_stack_onto_the_next_code_line() {
        let src = "\
// jitsu-lint: allow(D001, \"a\")
// jitsu-lint: allow(P001, \"b\")
let y = m.iter().next().unwrap();
";
        let (ws, ds) = collect("f.rs", &lex(src));
        assert!(ds.is_empty());
        assert_eq!(ws.len(), 2);
        assert_eq!(ws[0].target_line, Some(3));
        assert_eq!(ws[1].target_line, Some(3));
    }

    #[test]
    fn missing_reason_is_an_error() {
        for bad in [
            "// jitsu-lint: allow(D001)\nx();",
            "// jitsu-lint: allow(D001, \"\")\nx();",
            "// jitsu-lint: allow(D001, \"  \")\nx();",
        ] {
            let (ws, ds) = collect("f.rs", &lex(bad));
            assert!(ws.is_empty(), "no waiver for {bad:?}");
            assert_eq!(ds.len(), 1, "one error for {bad:?}");
            assert_eq!(ds[0].rule, "W001");
        }
    }

    #[test]
    fn unknown_rule_is_an_error() {
        let (ws, ds) = collect("f.rs", &lex("// jitsu-lint: allow(D999, \"why\")\nx();"));
        assert!(ws.is_empty());
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].rule, "W002");
    }

    #[test]
    fn unrelated_comments_are_ignored() {
        let (ws, ds) = collect("f.rs", &lex("// just a note about HashMap\nx();"));
        assert!(ws.is_empty() && ds.is_empty());
    }

    #[test]
    fn waiver_at_end_of_file_has_no_target() {
        let (ws, _) = collect("f.rs", &lex("x();\n// jitsu-lint: allow(D001, \"why\")\n"));
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].target_line, None);
    }
}
