//! A lightweight recursive-descent / Pratt parser over the lexer.
//!
//! This is deliberately *not* a full Rust parser: it recovers items
//! (functions with signatures, struct field tables, impl blocks for `self`
//! resolution), statements (`let` with patterns, types and initializers)
//! and expressions with operator precedence — just enough structure for the
//! shape-sensitive rules (C001/A001/R001/N001) to see receivers, operands
//! and cast targets instead of raw tokens. Anything it does not understand
//! degrades to [`ExprKind::Opaque`] and parsing continues: the analyzer
//! must keep producing diagnostics for the rest of the file, exactly like
//! the lexer's total-function guarantee.
//!
//! Every expression carries the code-token indices it spans (`start_ti`,
//! `end_ti`) and a head token (`ti`) that diagnostics anchor to, plus a
//! dense [`ExprId`] so the semantic pass ([`crate::sema`]) can attach a
//! type class to each node without back-pointers.

use crate::lexer::{Token, TokenKind};
use std::collections::BTreeMap;

/// Dense per-file expression identifier (index into the class table).
pub type ExprId = u32;

/// A parsed file: every `fn` (at any nesting), plus a struct field table
/// used to resolve `self.field` / `binding.field` types.
#[derive(Debug, Default)]
pub struct File {
    /// Every function found, including methods and nested fns.
    pub functions: Vec<Function>,
    /// struct name → (field name → declared type text).
    pub structs: BTreeMap<String, BTreeMap<String, String>>,
    /// Number of expression ids allocated (size of the class table).
    pub expr_count: u32,
}

/// One function with its signature and (optionally) parsed body.
#[derive(Debug)]
pub struct Function {
    /// The function's own name.
    pub name: String,
    /// The `impl` type the function sits in, if any (resolves `self`).
    pub self_ty: Option<String>,
    /// Parameters as `(name, declared type text)`; `self` is excluded.
    pub params: Vec<(String, String)>,
    /// Return type text, if declared.
    pub ret: Option<String>,
    /// The body; `None` for trait-method signatures.
    pub body: Option<Block>,
    /// Code-token index of the name (for span queries).
    pub name_ti: usize,
}

/// A `{ … }` statement list.
#[derive(Debug, Default)]
pub struct Block {
    pub stmts: Vec<Stmt>,
}

/// A statement. Items nested in blocks are hoisted into
/// [`File::functions`]/[`File::structs`] rather than kept in place.
#[derive(Debug)]
pub enum Stmt {
    /// `let PAT (: TY)? (= INIT)?;`
    Let {
        /// Identifiers the pattern binds.
        names: Vec<String>,
        /// True when the pattern is exactly `_` (a deliberate discard).
        underscore: bool,
        /// Declared type text, if any.
        ty: Option<String>,
        init: Option<Expr>,
        /// The diverging `else { … }` block of a `let … else`.
        els: Option<Block>,
        /// Code-token index of the `let` keyword.
        let_ti: usize,
        /// Code-token index of the terminating `;`, when present.
        semi_ti: Option<usize>,
    },
    /// An expression statement; `semi` records the trailing `;`.
    Expr { expr: Expr, semi: bool },
}

/// An expression node with its token span.
#[derive(Debug)]
pub struct Expr {
    pub id: ExprId,
    /// Head token (operator, method name, …) — the diagnostic anchor.
    pub ti: usize,
    /// First code token of the expression.
    pub start_ti: usize,
    /// Last code token of the expression.
    pub end_ti: usize,
    pub kind: ExprKind,
}

/// Binary / compound-assignment operators the rules care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Shl,
    Shr,
    BitAnd,
    BitOr,
    BitXor,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    And,
    Or,
}

impl BinOp {
    /// Is this one of the four ordering comparisons?
    pub fn is_ordering(self) -> bool {
        matches!(self, BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge)
    }

    /// Is this wrap-sensitive arithmetic (`+`, `-`, `*`)?
    pub fn is_wrap_arith(self) -> bool {
        matches!(self, BinOp::Add | BinOp::Sub | BinOp::Mul)
    }

    /// Source spelling, for diagnostics.
    pub fn text(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::BitAnd => "&",
            BinOp::BitOr => "|",
            BinOp::BitXor => "^",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }
}

/// Literal classes (only integer width matters to the rules).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LitKind {
    /// Integer literal; width in bits from the suffix, 0 when unsuffixed.
    Int(u16),
    Bool,
    Str,
    Char,
    Float,
}

/// One `match` arm: the names its pattern binds and the body.
#[derive(Debug)]
pub struct Arm {
    pub names: Vec<String>,
    pub body: Expr,
}

/// Expression shapes. Unrecognised syntax becomes `Opaque` and parsing
/// continues past it.
#[derive(Debug)]
pub enum ExprKind {
    /// `a::b::c` (a single identifier is a one-segment path).
    Path(Vec<String>),
    Field {
        base: Box<Expr>,
        name: String,
    },
    MethodCall {
        base: Box<Expr>,
        name: String,
        args: Vec<Expr>,
    },
    Call {
        callee: Box<Expr>,
        args: Vec<Expr>,
    },
    MacroCall {
        name: String,
        args: Vec<Expr>,
    },
    Binary {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    /// `lhs = rhs` or `lhs op= rhs` (`op` is `Some` for compound forms).
    Assign {
        op: Option<BinOp>,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    Cast {
        base: Box<Expr>,
        /// Target type text (e.g. `u16`).
        ty: String,
        /// Code-token index of the last type token (for fix spans).
        ty_end_ti: usize,
    },
    Unary {
        op: char,
        base: Box<Expr>,
    },
    Index {
        base: Box<Expr>,
        index: Box<Expr>,
    },
    Try {
        base: Box<Expr>,
    },
    Lit(LitKind),
    Tuple(Vec<Expr>),
    Array(Vec<Expr>),
    Block(Block),
    If {
        /// Names bound by an `if let` pattern, if any.
        names: Vec<String>,
        cond: Box<Expr>,
        then: Block,
        els: Option<Box<Expr>>,
    },
    Match {
        scrut: Box<Expr>,
        arms: Vec<Arm>,
    },
    For {
        names: Vec<String>,
        iter: Box<Expr>,
        body: Block,
    },
    While {
        /// Names bound by a `while let` pattern, if any.
        names: Vec<String>,
        cond: Box<Expr>,
        body: Block,
    },
    Loop {
        body: Block,
    },
    Closure {
        names: Vec<String>,
        body: Box<Expr>,
    },
    StructLit {
        path: Vec<String>,
        fields: Vec<(String, Expr)>,
        rest: Option<Box<Expr>>,
    },
    Range {
        lo: Option<Box<Expr>>,
        hi: Option<Box<Expr>>,
    },
    Return(Option<Box<Expr>>),
    Break(Option<Box<Expr>>),
    Opaque,
}

/// Parse a token stream (with its non-comment index) into a [`File`].
pub fn parse(tokens: &[Token], code: &[usize]) -> File {
    let mut p = Parser {
        toks: tokens,
        code,
        pos: 0,
        file: File::default(),
        next_id: 0,
    };
    let end = p.code.len();
    p.items(end, None);
    p.file.expr_count = p.next_id;
    p.file
}

/// Visitor over every expression and statement in a block tree, pre-order.
pub trait Visit {
    fn expr(&mut self, _e: &Expr) {}
    fn stmt(&mut self, _s: &Stmt) {}
}

/// Walk a block, invoking the visitor on every statement and expression.
pub fn visit_block(b: &Block, v: &mut dyn Visit) {
    for s in &b.stmts {
        v.stmt(s);
        match s {
            Stmt::Let { init, els, .. } => {
                if let Some(e) = init {
                    visit_expr(e, v);
                }
                if let Some(b) = els {
                    visit_block(b, v);
                }
            }
            Stmt::Expr { expr, .. } => visit_expr(expr, v),
        }
    }
}

/// Walk one expression tree, invoking the visitor on every node.
pub fn visit_expr(e: &Expr, v: &mut dyn Visit) {
    v.expr(e);
    match &e.kind {
        ExprKind::Path(_) | ExprKind::Lit(_) | ExprKind::Opaque => {}
        ExprKind::Field { base, .. }
        | ExprKind::Unary { base, .. }
        | ExprKind::Try { base }
        | ExprKind::Cast { base, .. } => visit_expr(base, v),
        ExprKind::MethodCall { base, args, .. } => {
            visit_expr(base, v);
            for a in args {
                visit_expr(a, v);
            }
        }
        ExprKind::Call { callee, args } => {
            visit_expr(callee, v);
            for a in args {
                visit_expr(a, v);
            }
        }
        ExprKind::MacroCall { args, .. } => {
            for a in args {
                visit_expr(a, v);
            }
        }
        ExprKind::Binary { lhs, rhs, .. } | ExprKind::Assign { lhs, rhs, .. } => {
            visit_expr(lhs, v);
            visit_expr(rhs, v);
        }
        ExprKind::Index { base, index } => {
            visit_expr(base, v);
            visit_expr(index, v);
        }
        ExprKind::Tuple(xs) | ExprKind::Array(xs) => {
            for x in xs {
                visit_expr(x, v);
            }
        }
        ExprKind::Block(b) => visit_block(b, v),
        ExprKind::If {
            cond, then, els, ..
        } => {
            visit_expr(cond, v);
            visit_block(then, v);
            if let Some(e) = els {
                visit_expr(e, v);
            }
        }
        ExprKind::Match { scrut, arms } => {
            visit_expr(scrut, v);
            for a in arms {
                visit_expr(&a.body, v);
            }
        }
        ExprKind::For { iter, body, .. } => {
            visit_expr(iter, v);
            visit_block(body, v);
        }
        ExprKind::While { cond, body, .. } => {
            visit_expr(cond, v);
            visit_block(body, v);
        }
        ExprKind::Loop { body } => visit_block(body, v),
        ExprKind::Closure { body, .. } => visit_expr(body, v),
        ExprKind::StructLit { fields, rest, .. } => {
            for (_, e) in fields {
                visit_expr(e, v);
            }
            if let Some(r) = rest {
                visit_expr(r, v);
            }
        }
        ExprKind::Range { lo, hi } => {
            if let Some(e) = lo {
                visit_expr(e, v);
            }
            if let Some(e) = hi {
                visit_expr(e, v);
            }
        }
        ExprKind::Return(x) | ExprKind::Break(x) => {
            if let Some(e) = x {
                visit_expr(e, v);
            }
        }
    }
}

const ITEM_KEYWORDS: &[&str] = &[
    "fn",
    "struct",
    "enum",
    "impl",
    "trait",
    "mod",
    "use",
    "static",
    "type",
    "macro_rules",
    "extern",
];

struct Parser<'a> {
    toks: &'a [Token],
    code: &'a [usize],
    pos: usize,
    file: File,
    next_id: ExprId,
}

impl<'a> Parser<'a> {
    // ---- token helpers -------------------------------------------------

    fn at(&self, i: usize) -> Option<&'a Token> {
        self.code.get(i).map(|&k| &self.toks[k])
    }

    fn cur(&self) -> Option<&'a Token> {
        self.at(self.pos)
    }

    fn is_p(&self, i: usize, c: char) -> bool {
        self.at(i).is_some_and(|t| t.is_punct(c))
    }

    fn is_kw(&self, i: usize, s: &str) -> bool {
        self.at(i).is_some_and(|t| t.is_ident(s))
    }

    fn bump(&mut self) -> usize {
        let i = self.pos;
        self.pos += 1;
        i
    }

    /// Are code tokens `i` and `i + 1` adjacent in the source (no gap)?
    /// Used to reassemble multi-character operators from single puncts.
    fn glued(&self, i: usize) -> bool {
        match (self.at(i), self.at(i + 1)) {
            (Some(a), Some(b)) => {
                a.line == b.line && a.col + a.text.chars().count() as u32 == b.col
            }
            _ => false,
        }
    }

    /// Is token `i` the `>` half of a `->` or `=>` arrow?
    fn arrow_tail(&self, i: usize) -> bool {
        i > 0
            && self.is_p(i, '>')
            && (self.is_p(i - 1, '-') || self.is_p(i - 1, '='))
            && self.glued(i - 1)
    }

    fn new_expr(&mut self, ti: usize, start: usize, end: usize, kind: ExprKind) -> Expr {
        let id = self.next_id;
        self.next_id += 1;
        Expr {
            id,
            ti,
            start_ti: start,
            end_ti: end,
            kind,
        }
    }

    // ---- generic skippers ----------------------------------------------

    /// Skip a balanced `< … >` generic-argument list starting at `pos`.
    fn skip_generics(&mut self) {
        if !self.is_p(self.pos, '<') {
            return;
        }
        let mut depth = 0i32;
        while let Some(t) = self.cur() {
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') && !self.arrow_tail(self.pos) {
                depth -= 1;
                if depth == 0 {
                    self.bump();
                    return;
                }
            } else if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                self.skip_bracketed();
                continue;
            }
            self.bump();
        }
    }

    /// Skip a balanced `( … )` / `[ … ]` / `{ … }` group starting at `pos`.
    fn skip_bracketed(&mut self) {
        let mut depth = 0i32;
        while let Some(t) = self.cur() {
            match t.text.as_bytes().first() {
                Some(b'(') | Some(b'[') | Some(b'{') if t.kind == TokenKind::Punct => depth += 1,
                Some(b')') | Some(b']') | Some(b'}') if t.kind == TokenKind::Punct => {
                    depth -= 1;
                    if depth == 0 {
                        self.bump();
                        return;
                    }
                }
                _ => {}
            }
            self.bump();
        }
    }

    /// Skip an attribute `#[ … ]` (pos at `#`).
    fn skip_attr(&mut self) {
        self.bump(); // `#`
        if self.is_p(self.pos, '!') {
            self.bump();
        }
        if self.is_p(self.pos, '[') {
            self.skip_bracketed();
        }
    }

    /// Skip to just past the next `;` at bracket depth 0.
    fn skip_to_semi(&mut self) {
        let mut depth = 0i32;
        while let Some(t) = self.cur() {
            if t.kind == TokenKind::Punct {
                match t.text.as_bytes().first() {
                    Some(b'(') | Some(b'[') | Some(b'{') => depth += 1,
                    Some(b')') | Some(b']') | Some(b'}') => depth -= 1,
                    Some(b';') if depth <= 0 => {
                        self.bump();
                        return;
                    }
                    _ => {}
                }
            }
            self.bump();
        }
    }

    /// Skip an item body: either `{ … }` or a terminating `;`, whichever
    /// comes first at depth 0.
    fn skip_item_body(&mut self) {
        while let Some(t) = self.cur() {
            if t.is_punct('{') {
                self.skip_bracketed();
                return;
            }
            if t.is_punct(';') {
                self.bump();
                return;
            }
            if t.is_punct('(') || t.is_punct('[') {
                self.skip_bracketed();
                continue;
            }
            self.bump();
        }
    }

    // ---- type collection -----------------------------------------------

    /// Collect type tokens until a stopping punct at depth 0 (`,`, `;`,
    /// `=`, `)`, `{`, `>` closing an outer list). Returns normalized text.
    fn collect_ty(&mut self, stop: &[char]) -> String {
        let mut parts: Vec<String> = Vec::new();
        let mut prev_ident = false;
        let mut angle = 0i32;
        let mut paren = 0i32;
        while let Some(t) = self.cur() {
            if t.kind == TokenKind::Punct {
                let c = t.text.chars().next().unwrap_or(' ');
                if angle == 0 && paren == 0 && stop.contains(&c) && !self.arrow_tail(self.pos) {
                    // `->` inside an fn-pointer type must not stop on `>`.
                    if !(c == '>' && angle > 0) {
                        break;
                    }
                }
                match c {
                    '<' => angle += 1,
                    '>' => {
                        if self.arrow_tail(self.pos) {
                            // part of `->`: keep going.
                        } else {
                            if angle == 0 {
                                break;
                            }
                            angle -= 1;
                        }
                    }
                    '(' | '[' => paren += 1,
                    ')' | ']' => {
                        if paren == 0 {
                            break;
                        }
                        paren -= 1;
                    }
                    '{' | ';' => break,
                    _ => {}
                }
            }
            let is_ident = t.kind == TokenKind::Ident;
            if is_ident && prev_ident {
                parts.push(" ".to_string());
            }
            if t.kind == TokenKind::Lifetime {
                parts.push(format!("'{}", t.text));
            } else {
                parts.push(t.text.clone());
            }
            prev_ident = is_ident;
            self.bump();
        }
        parts.concat()
    }

    // ---- pattern collection --------------------------------------------

    /// Collect the identifiers a pattern binds, scanning until one of the
    /// `stop` puncts or the ident `stop_kw` appears at depth 0. Constructor
    /// names (followed by `(`/`{`/`::`) and keywords are excluded.
    fn collect_pat(&mut self, stop: &[char], stop_kw: Option<&str>) -> (Vec<String>, bool) {
        let mut names = Vec::new();
        let mut depth = 0i32;
        let mut token_count = 0usize;
        let mut lone_underscore = false;
        while let Some(t) = self.cur() {
            if t.kind == TokenKind::Punct {
                let c = t.text.chars().next().unwrap_or(' ');
                if depth == 0 && stop.contains(&c) {
                    // `::` is not the single-colon type separator.
                    if c == ':' && self.is_p(self.pos + 1, ':') {
                        self.bump();
                        self.bump();
                        token_count += 2;
                        continue;
                    }
                    break;
                }
                match c {
                    '(' | '[' | '{' | '<' => depth += 1,
                    ')' | ']' | '}' => depth -= 1,
                    '>' if !self.arrow_tail(self.pos) => depth -= 1,
                    _ => {}
                }
                self.bump();
                token_count += 1;
                continue;
            }
            if depth == 0 {
                if let Some(kw) = stop_kw {
                    if t.is_ident(kw) {
                        break;
                    }
                }
            }
            if t.kind == TokenKind::Ident {
                let name = t.text.clone();
                let i = self.bump();
                token_count += 1;
                if name == "_" {
                    lone_underscore = token_count == 1;
                    continue;
                }
                if matches!(
                    name.as_str(),
                    "mut" | "ref" | "box" | "if" | "true" | "false"
                ) {
                    continue;
                }
                // Constructor or path segment, not a binding.
                if self.is_p(i + 1, '(') || self.is_p(i + 1, '{') {
                    continue;
                }
                if self.is_p(i + 1, ':') && self.is_p(i + 2, ':') {
                    continue;
                }
                names.push(name);
                continue;
            }
            self.bump();
            token_count += 1;
        }
        let lone = lone_underscore && names.is_empty();
        (names, lone)
    }

    // ---- items ----------------------------------------------------------

    /// Parse items until code index `end` (exclusive).
    fn items(&mut self, end: usize, self_ty: Option<&str>) {
        while self.pos < end {
            let Some(t) = self.cur() else { break };
            if t.is_punct('#') {
                self.skip_attr();
                continue;
            }
            if t.kind != TokenKind::Ident {
                if t.is_punct('{') {
                    self.skip_bracketed();
                } else {
                    self.bump();
                }
                continue;
            }
            match t.text.as_str() {
                "fn" => self.parse_fn(self_ty),
                "struct" => self.parse_struct(),
                "impl" => self.parse_impl(),
                "mod" | "trait" => {
                    self.bump();
                    // `mod name;` or `mod name { items }`.
                    while let Some(t2) = self.cur() {
                        if t2.is_punct(';') {
                            self.bump();
                            break;
                        }
                        if t2.is_punct('{') {
                            self.bump();
                            let inner_end = self.matching_brace_end();
                            self.items(inner_end, None);
                            if self.is_p(self.pos, '}') {
                                self.bump();
                            }
                            break;
                        }
                        self.bump();
                    }
                }
                "enum" | "macro_rules" | "extern" => {
                    self.bump();
                    self.skip_item_body();
                }
                "use" | "static" | "type" => {
                    self.bump();
                    self.skip_to_semi();
                }
                "const" => {
                    // `const fn` is a function; `const NAME: T = …;` is not.
                    if self.is_kw(self.pos + 1, "fn") {
                        self.bump();
                        self.parse_fn(self_ty);
                    } else {
                        self.bump();
                        self.skip_to_semi();
                    }
                }
                _ => {
                    self.bump();
                }
            }
        }
    }

    /// With `pos` just past a `{`, find the code index of its matching `}`.
    fn matching_brace_end(&self) -> usize {
        let mut depth = 1i32;
        let mut i = self.pos;
        while let Some(t) = self.at(i) {
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            i += 1;
        }
        self.code.len()
    }

    fn parse_struct(&mut self) {
        self.bump(); // `struct`
        let Some(name_tok) = self.cur() else { return };
        if name_tok.kind != TokenKind::Ident {
            return;
        }
        let name = name_tok.text.clone();
        self.bump();
        self.skip_generics();
        if self.is_p(self.pos, '{') {
            self.bump();
            let mut fields = BTreeMap::new();
            // `vis? name : TYPE ,` pairs until `}`.
            while let Some(t) = self.cur() {
                if t.is_punct('}') {
                    self.bump();
                    break;
                }
                if t.is_punct('#') {
                    self.skip_attr();
                    continue;
                }
                if t.kind == TokenKind::Ident {
                    if t.text == "pub" {
                        self.bump();
                        if self.is_p(self.pos, '(') {
                            self.skip_bracketed();
                        }
                        continue;
                    }
                    let fname = t.text.clone();
                    let i = self.bump();
                    if self.is_p(i + 1, ':') && !self.is_p(i + 2, ':') {
                        self.bump(); // `:`
                        let ty = self.collect_ty(&[',', '}']);
                        fields.insert(fname, ty);
                    }
                    continue;
                }
                self.bump();
            }
            self.file.structs.insert(name, fields);
        } else {
            // Tuple struct or unit struct: no named fields to record.
            self.skip_item_body();
        }
    }

    fn parse_impl(&mut self) {
        self.bump(); // `impl`
        self.skip_generics();
        // Collect path segments until `{`, `for`, or `where`; if a `for`
        // appears, the segment after it is the implementing type.
        let mut last_seg: Option<String> = None;
        while let Some(t) = self.cur() {
            if t.is_punct('{') || t.is_ident("where") {
                break;
            }
            if t.is_ident("for") {
                self.bump();
                last_seg = None;
                continue;
            }
            if t.kind == TokenKind::Ident {
                last_seg = Some(t.text.clone());
                self.bump();
                self.skip_generics();
                continue;
            }
            self.bump();
        }
        while let Some(t) = self.cur() {
            if t.is_punct('{') {
                break;
            }
            self.bump();
        }
        if self.is_p(self.pos, '{') {
            self.bump();
            let inner_end = self.matching_brace_end();
            let ty = last_seg;
            self.items(inner_end, ty.as_deref());
            if self.is_p(self.pos, '}') {
                self.bump();
            }
        }
    }

    fn parse_fn(&mut self, self_ty: Option<&str>) {
        self.bump(); // `fn`
        let Some(name_tok) = self.cur() else { return };
        if name_tok.kind != TokenKind::Ident {
            return;
        }
        let name = name_tok.text.clone();
        let name_ti = self.bump();
        self.skip_generics();
        let mut params = Vec::new();
        if self.is_p(self.pos, '(') {
            self.bump();
            while let Some(t) = self.cur() {
                if t.is_punct(')') {
                    self.bump();
                    break;
                }
                if t.is_punct('#') {
                    self.skip_attr();
                    continue;
                }
                // One parameter: `pat : TYPE` or a `self` receiver.
                let (names, _) = self.collect_pat(&[':', ',', ')'], None);
                if self.is_p(self.pos, ':') && !self.is_p(self.pos + 1, ':') {
                    self.bump();
                    let ty = self.collect_ty(&[',', ')']);
                    if names.len() == 1 {
                        params.push((names[0].clone(), ty));
                    }
                }
                if self.is_p(self.pos, ',') {
                    self.bump();
                }
            }
        }
        let mut ret = None;
        if self.is_p(self.pos, '-') && self.is_p(self.pos + 1, '>') && self.glued(self.pos) {
            self.bump();
            self.bump();
            let ty = self.collect_ty(&['{', ';', ',']);
            if !ty.is_empty() {
                ret = Some(ty);
            }
        }
        if self.is_kw(self.pos, "where") {
            while let Some(t) = self.cur() {
                if t.is_punct('{') || t.is_punct(';') {
                    break;
                }
                if t.is_punct('<') {
                    self.skip_generics();
                    continue;
                }
                self.bump();
            }
        }
        let body = if self.is_p(self.pos, '{') {
            Some(self.parse_block())
        } else {
            if self.is_p(self.pos, ';') {
                self.bump();
            }
            None
        };
        self.file.functions.push(Function {
            name,
            self_ty: self_ty.map(|s| s.to_string()),
            params,
            ret,
            body,
            name_ti,
        });
    }

    // ---- statements -----------------------------------------------------

    /// Parse a `{ … }` block (pos at `{`).
    fn parse_block(&mut self) -> Block {
        let mut block = Block::default();
        if !self.is_p(self.pos, '{') {
            return block;
        }
        self.bump();
        while let Some(t) = self.cur() {
            if t.is_punct('}') {
                self.bump();
                break;
            }
            if t.is_punct(';') {
                self.bump();
                continue;
            }
            if t.is_punct('#') {
                self.skip_attr();
                continue;
            }
            if t.is_ident("let") {
                let stmt = self.parse_let();
                block.stmts.push(stmt);
                continue;
            }
            if t.kind == TokenKind::Ident && ITEM_KEYWORDS.contains(&t.text.as_str()) {
                // Items in blocks are hoisted (fn/struct) or skipped.
                let before = self.pos;
                match t.text.as_str() {
                    "fn" => self.parse_fn(None),
                    "struct" => self.parse_struct(),
                    "impl" => self.parse_impl(),
                    "use" | "static" | "type" => {
                        self.bump();
                        self.skip_to_semi();
                    }
                    _ => {
                        self.bump();
                        self.skip_item_body();
                    }
                }
                if self.pos == before {
                    self.bump();
                }
                continue;
            }
            if t.is_ident("const") && !self.is_kw(self.pos + 1, "fn") {
                self.bump();
                self.skip_to_semi();
                continue;
            }
            let before = self.pos;
            let expr = self.parse_expr(0, false);
            let semi = self.is_p(self.pos, ';');
            if semi {
                self.bump();
            }
            block.stmts.push(Stmt::Expr { expr, semi });
            if self.pos == before {
                // Hard guarantee of progress on unparseable input.
                self.bump();
            }
        }
        block
    }

    fn parse_let(&mut self) -> Stmt {
        let let_ti = self.bump(); // `let`
        let (names, underscore) = self.collect_pat(&[':', '=', ';'], None);
        let mut ty = None;
        if self.is_p(self.pos, ':') && !self.is_p(self.pos + 1, ':') {
            self.bump();
            let t = self.collect_ty(&['=', ';']);
            if !t.is_empty() {
                ty = Some(t);
            }
        }
        let mut init = None;
        if self.is_p(self.pos, '=') {
            self.bump();
            init = Some(self.parse_expr(0, false));
        }
        // `let … else { … }` diverging alternative.
        let els = if self.is_kw(self.pos, "else") {
            self.bump();
            if self.is_p(self.pos, '{') {
                Some(self.parse_block())
            } else {
                None
            }
        } else {
            None
        };
        let semi_ti = if self.is_p(self.pos, ';') {
            Some(self.bump())
        } else {
            None
        };
        Stmt::Let {
            names,
            underscore,
            ty,
            init,
            els,
            let_ti,
            semi_ti,
        }
    }

    // ---- expressions ----------------------------------------------------

    /// Pratt parse with a minimum binding power. `no_struct` disables the
    /// `Path { … }` struct-literal form (condition / scrutinee position).
    fn parse_expr(&mut self, min_bp: u8, no_struct: bool) -> Expr {
        let mut lhs = self.parse_unary(no_struct);
        while let Some((op, ntoks, bp)) = self.peek_binop() {
            if bp < min_bp {
                break;
            }
            let op_ti = self.pos;
            for _ in 0..ntoks {
                self.bump();
            }
            match op {
                PrattOp::Bin(b) => {
                    let rhs = self.parse_expr(bp + 1, no_struct);
                    let (s, e) = (lhs.start_ti, rhs.end_ti);
                    lhs = self.new_expr(
                        op_ti,
                        s,
                        e,
                        ExprKind::Binary {
                            op: b,
                            lhs: Box::new(lhs),
                            rhs: Box::new(rhs),
                        },
                    );
                }
                PrattOp::Assign(b) => {
                    let rhs = self.parse_expr(bp, no_struct); // right assoc
                    let (s, e) = (lhs.start_ti, rhs.end_ti);
                    lhs = self.new_expr(
                        op_ti,
                        s,
                        e,
                        ExprKind::Assign {
                            op: b,
                            lhs: Box::new(lhs),
                            rhs: Box::new(rhs),
                        },
                    );
                }
                PrattOp::Range => {
                    let hi = if self.expr_can_start(no_struct) {
                        Some(Box::new(self.parse_expr(bp + 1, no_struct)))
                    } else {
                        None
                    };
                    let s = lhs.start_ti;
                    let e = hi.as_ref().map_or(op_ti + ntoks - 1, |h| h.end_ti);
                    lhs = self.new_expr(
                        op_ti,
                        s,
                        e,
                        ExprKind::Range {
                            lo: Some(Box::new(lhs)),
                            hi,
                        },
                    );
                }
            }
        }
        lhs
    }

    /// Can the current token start an expression? (Used for open ranges.)
    fn expr_can_start(&self, _no_struct: bool) -> bool {
        match self.cur() {
            None => false,
            Some(t) => match t.kind {
                TokenKind::Ident
                | TokenKind::Number
                | TokenKind::Str
                | TokenKind::RawStr
                | TokenKind::Char => true,
                TokenKind::Punct => matches!(
                    t.text.chars().next().unwrap_or(' '),
                    '(' | '[' | '{' | '&' | '*' | '!' | '-' | '|'
                ),
                _ => false,
            },
        }
    }

    /// Peek a binary / assignment / range operator, greedily composing
    /// adjacent single-char puncts. Returns `(op, token count, bp)`.
    fn peek_binop(&self) -> Option<(PrattOp, usize, u8)> {
        let t = self.cur()?;
        if t.kind != TokenKind::Punct {
            return None;
        }
        let c0 = t.text.chars().next()?;
        let c1 = if self.glued(self.pos) {
            self.at(self.pos + 1)
                .filter(|t| t.kind == TokenKind::Punct)
                .and_then(|t| t.text.chars().next())
        } else {
            None
        };
        let c2 = if c1.is_some() && self.glued(self.pos + 1) {
            self.at(self.pos + 2)
                .filter(|t| t.kind == TokenKind::Punct)
                .and_then(|t| t.text.chars().next())
        } else {
            None
        };
        // Three-char forms first.
        match (c0, c1, c2) {
            ('<', Some('<'), Some('=')) => {
                return Some((PrattOp::Assign(Some(BinOp::Shl)), 3, 1));
            }
            ('>', Some('>'), Some('=')) => {
                return Some((PrattOp::Assign(Some(BinOp::Shr)), 3, 1));
            }
            ('.', Some('.'), Some('=')) => return Some((PrattOp::Range, 3, 2)),
            _ => {}
        }
        match (c0, c1) {
            ('=', Some('=')) => Some((PrattOp::Bin(BinOp::Eq), 2, 5)),
            ('!', Some('=')) => Some((PrattOp::Bin(BinOp::Ne), 2, 5)),
            ('<', Some('=')) => Some((PrattOp::Bin(BinOp::Le), 2, 5)),
            ('>', Some('=')) => Some((PrattOp::Bin(BinOp::Ge), 2, 5)),
            ('&', Some('&')) => Some((PrattOp::Bin(BinOp::And), 2, 4)),
            ('|', Some('|')) => Some((PrattOp::Bin(BinOp::Or), 2, 3)),
            ('<', Some('<')) => Some((PrattOp::Bin(BinOp::Shl), 2, 9)),
            ('>', Some('>')) => Some((PrattOp::Bin(BinOp::Shr), 2, 9)),
            ('+', Some('=')) => Some((PrattOp::Assign(Some(BinOp::Add)), 2, 1)),
            ('-', Some('=')) => Some((PrattOp::Assign(Some(BinOp::Sub)), 2, 1)),
            ('*', Some('=')) => Some((PrattOp::Assign(Some(BinOp::Mul)), 2, 1)),
            ('/', Some('=')) => Some((PrattOp::Assign(Some(BinOp::Div)), 2, 1)),
            ('%', Some('=')) => Some((PrattOp::Assign(Some(BinOp::Rem)), 2, 1)),
            ('&', Some('=')) => Some((PrattOp::Assign(Some(BinOp::BitAnd)), 2, 1)),
            ('|', Some('=')) => Some((PrattOp::Assign(Some(BinOp::BitOr)), 2, 1)),
            ('^', Some('=')) => Some((PrattOp::Assign(Some(BinOp::BitXor)), 2, 1)),
            ('.', Some('.')) => Some((PrattOp::Range, 2, 2)),
            ('=', Some('>')) => None, // match-arm arrow terminates the expr
            ('=', _) => Some((PrattOp::Assign(None), 1, 1)),
            ('<', _) => Some((PrattOp::Bin(BinOp::Lt), 1, 5)),
            ('>', _) => Some((PrattOp::Bin(BinOp::Gt), 1, 5)),
            ('+', _) => Some((PrattOp::Bin(BinOp::Add), 1, 10)),
            ('-', _) => Some((PrattOp::Bin(BinOp::Sub), 1, 10)),
            ('*', _) => Some((PrattOp::Bin(BinOp::Mul), 1, 11)),
            ('/', _) => Some((PrattOp::Bin(BinOp::Div), 1, 11)),
            ('%', _) => Some((PrattOp::Bin(BinOp::Rem), 1, 11)),
            ('^', _) => Some((PrattOp::Bin(BinOp::BitXor), 1, 7)),
            ('&', _) => Some((PrattOp::Bin(BinOp::BitAnd), 1, 8)),
            ('|', _) => Some((PrattOp::Bin(BinOp::BitOr), 1, 6)),
            _ => None,
        }
    }

    fn parse_unary(&mut self, no_struct: bool) -> Expr {
        let start = self.pos;
        let Some(t) = self.cur() else {
            return self.new_expr(start, start, start, ExprKind::Opaque);
        };
        // Prefix operators.
        if t.kind == TokenKind::Punct {
            let c = t.text.chars().next().unwrap_or(' ');
            match c {
                '&' | '*' | '!' | '-' => {
                    let op_ti = self.bump();
                    if c == '&' && self.is_kw(self.pos, "mut") {
                        self.bump();
                    }
                    let base = self.parse_unary(no_struct);
                    let end = base.end_ti;
                    let e = self.new_expr(
                        op_ti,
                        start,
                        end,
                        ExprKind::Unary {
                            op: c,
                            base: Box::new(base),
                        },
                    );
                    return self.postfix(e, no_struct);
                }
                '|' => return self.parse_closure(start, no_struct),
                '(' => {
                    self.bump();
                    let mut items = Vec::new();
                    let mut trailing_comma = false;
                    while let Some(t2) = self.cur() {
                        if t2.is_punct(')') {
                            break;
                        }
                        items.push(self.parse_expr(0, false));
                        if self.is_p(self.pos, ',') {
                            self.bump();
                            trailing_comma = true;
                        } else {
                            trailing_comma = false;
                            break;
                        }
                    }
                    let end = if self.is_p(self.pos, ')') {
                        self.bump()
                    } else {
                        self.pos.saturating_sub(1)
                    };
                    let e = if items.len() == 1 && !trailing_comma {
                        // A parenthesised expression: transparent grouping,
                        // but keep the paren span for fix edits.
                        let mut inner = items.pop().expect("len checked");
                        inner.start_ti = start;
                        inner.end_ti = end;
                        inner
                    } else {
                        self.new_expr(start, start, end, ExprKind::Tuple(items))
                    };
                    return self.postfix(e, no_struct);
                }
                '[' => {
                    self.bump();
                    let mut items = Vec::new();
                    while let Some(t2) = self.cur() {
                        if t2.is_punct(']') {
                            break;
                        }
                        items.push(self.parse_expr(0, false));
                        if self.is_p(self.pos, ',') || self.is_p(self.pos, ';') {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    let end = if self.is_p(self.pos, ']') {
                        self.bump()
                    } else {
                        self.pos.saturating_sub(1)
                    };
                    let e = self.new_expr(start, start, end, ExprKind::Array(items));
                    return self.postfix(e, no_struct);
                }
                '{' => {
                    let blk = self.parse_block();
                    let end = self.pos.saturating_sub(1);
                    let e = self.new_expr(start, start, end, ExprKind::Block(blk));
                    return self.postfix(e, no_struct);
                }
                '.' => {
                    // Prefix range `..x` / `..=x` / bare `..`.
                    if self.is_p(self.pos + 1, '.') {
                        self.bump();
                        self.bump();
                        if self.is_p(self.pos, '=') && self.glued(self.pos - 1) {
                            self.bump();
                        }
                        let hi = if self.expr_can_start(no_struct) {
                            Some(Box::new(self.parse_expr(3, no_struct)))
                        } else {
                            None
                        };
                        let end = hi.as_ref().map_or(self.pos.saturating_sub(1), |h| h.end_ti);
                        return self.new_expr(start, start, end, ExprKind::Range { lo: None, hi });
                    }
                    self.bump();
                    return self.new_expr(start, start, start, ExprKind::Opaque);
                }
                _ => {
                    self.bump();
                    return self.new_expr(start, start, start, ExprKind::Opaque);
                }
            }
        }
        // Literals.
        match t.kind {
            TokenKind::Number => {
                let w = int_suffix_width(&t.text);
                self.bump();
                let is_float = t.text.contains(['e', 'E']) && !t.text.starts_with("0x")
                    || (self.is_p(self.pos, '.')
                        && self
                            .at(self.pos + 1)
                            .is_some_and(|n| n.kind == TokenKind::Number));
                let kind = if is_float {
                    // Consume `.` digits of a float literal split by the lexer.
                    if self.is_p(self.pos, '.') {
                        self.bump();
                        if self
                            .at(self.pos)
                            .is_some_and(|n| n.kind == TokenKind::Number)
                        {
                            self.bump();
                        }
                    }
                    ExprKind::Lit(LitKind::Float)
                } else {
                    ExprKind::Lit(LitKind::Int(w))
                };
                let end = self.pos.saturating_sub(1);
                let e = self.new_expr(start, start, end, kind);
                return self.postfix(e, no_struct);
            }
            TokenKind::Str | TokenKind::RawStr => {
                self.bump();
                let e = self.new_expr(start, start, start, ExprKind::Lit(LitKind::Str));
                return self.postfix(e, no_struct);
            }
            TokenKind::Char => {
                self.bump();
                let e = self.new_expr(start, start, start, ExprKind::Lit(LitKind::Char));
                return self.postfix(e, no_struct);
            }
            TokenKind::Lifetime => {
                // A loop label `'a: loop { … }`.
                self.bump();
                if self.is_p(self.pos, ':') {
                    self.bump();
                }
                return self.parse_unary(no_struct);
            }
            _ => {}
        }
        // Keyword expressions and paths.
        let word = t.text.as_str();
        match word {
            "true" | "false" => {
                self.bump();
                let e = self.new_expr(start, start, start, ExprKind::Lit(LitKind::Bool));
                self.postfix(e, no_struct)
            }
            "if" => self.parse_if(start),
            "match" => self.parse_match(start),
            "for" => self.parse_for(start),
            "while" => self.parse_while(start),
            "loop" => {
                self.bump();
                let body = self.parse_block();
                let end = self.pos.saturating_sub(1);
                self.new_expr(start, start, end, ExprKind::Loop { body })
            }
            "unsafe" => {
                self.bump();
                let blk = self.parse_block();
                let end = self.pos.saturating_sub(1);
                self.new_expr(start, start, end, ExprKind::Block(blk))
            }
            "return" | "break" => {
                self.bump();
                let inner = if self.expr_can_start(no_struct) && !self.is_p(self.pos, '{') {
                    Some(Box::new(self.parse_expr(0, no_struct)))
                } else {
                    None
                };
                let end = inner.as_ref().map_or(start, |e| e.end_ti);
                let kind = if word == "return" {
                    ExprKind::Return(inner)
                } else {
                    ExprKind::Break(inner)
                };
                self.new_expr(start, start, end, kind)
            }
            "continue" => {
                self.bump();
                self.new_expr(start, start, start, ExprKind::Opaque)
            }
            "move" => {
                self.bump();
                if self.is_p(self.pos, '|') {
                    self.parse_closure(start, no_struct)
                } else {
                    self.new_expr(start, start, start, ExprKind::Opaque)
                }
            }
            _ => self.parse_path_expr(start, no_struct),
        }
    }

    fn parse_closure(&mut self, start: usize, no_struct: bool) -> Expr {
        // pos at the opening `|`; `||` lexes as two adjacent puncts.
        self.bump();
        let names = if self.is_p(self.pos, '|') && self.glued(self.pos.saturating_sub(1)) {
            Vec::new()
        } else {
            let (names, _) = self.collect_pat(&['|'], None);
            names
        };
        if self.is_p(self.pos, '|') {
            self.bump();
        }
        // Optional `-> T` before a block body.
        if self.is_p(self.pos, '-') && self.is_p(self.pos + 1, '>') && self.glued(self.pos) {
            self.bump();
            self.bump();
            let _ty = self.collect_ty(&['{']);
        }
        let body = self.parse_expr(0, no_struct);
        let end = body.end_ti;
        self.new_expr(
            start,
            start,
            end,
            ExprKind::Closure {
                names,
                body: Box::new(body),
            },
        )
    }

    fn parse_if(&mut self, start: usize) -> Expr {
        self.bump(); // `if`
        let mut names = Vec::new();
        if self.is_kw(self.pos, "let") {
            self.bump();
            let (n, _) = self.collect_pat(&['='], None);
            names = n;
            if self.is_p(self.pos, '=') {
                self.bump();
            }
        }
        let cond = self.parse_expr(0, true);
        let then = self.parse_block();
        let mut els = None;
        if self.is_kw(self.pos, "else") {
            self.bump();
            let e = if self.is_kw(self.pos, "if") {
                let s2 = self.pos;
                self.parse_if(s2)
            } else {
                let s2 = self.pos;
                let blk = self.parse_block();
                let end = self.pos.saturating_sub(1);
                self.new_expr(s2, s2, end, ExprKind::Block(blk))
            };
            els = Some(Box::new(e));
        }
        let end = self.pos.saturating_sub(1);
        self.new_expr(
            start,
            start,
            end,
            ExprKind::If {
                names,
                cond: Box::new(cond),
                then,
                els,
            },
        )
    }

    fn parse_match(&mut self, start: usize) -> Expr {
        self.bump(); // `match`
        let scrut = self.parse_expr(0, true);
        let mut arms = Vec::new();
        if self.is_p(self.pos, '{') {
            self.bump();
            while let Some(t) = self.cur() {
                if t.is_punct('}') {
                    self.bump();
                    break;
                }
                if t.is_punct('#') {
                    self.skip_attr();
                    continue;
                }
                let before = self.pos;
                // Pattern (with alternatives and guards) up to `=>`.
                let (names, _) = self.collect_pat(&['='], Some("\u{0}"));
                // collect_pat stops at `=`; require the `>` half.
                if self.is_p(self.pos, '=') && self.is_p(self.pos + 1, '>') {
                    self.bump();
                    self.bump();
                    let body = self.parse_expr(0, false);
                    if self.is_p(self.pos, ',') {
                        self.bump();
                    }
                    arms.push(Arm { names, body });
                } else if self.pos == before {
                    self.bump();
                }
            }
        }
        let end = self.pos.saturating_sub(1);
        self.new_expr(
            start,
            start,
            end,
            ExprKind::Match {
                scrut: Box::new(scrut),
                arms,
            },
        )
    }

    fn parse_for(&mut self, start: usize) -> Expr {
        self.bump(); // `for`
        let (names, _) = self.collect_pat(&[], Some("in"));
        if self.is_kw(self.pos, "in") {
            self.bump();
        }
        let iter = self.parse_expr(0, true);
        let body = self.parse_block();
        let end = self.pos.saturating_sub(1);
        self.new_expr(
            start,
            start,
            end,
            ExprKind::For {
                names,
                iter: Box::new(iter),
                body,
            },
        )
    }

    fn parse_while(&mut self, start: usize) -> Expr {
        self.bump(); // `while`
        let mut names = Vec::new();
        if self.is_kw(self.pos, "let") {
            self.bump();
            let (n, _) = self.collect_pat(&['='], None);
            names = n;
            if self.is_p(self.pos, '=') {
                self.bump();
            }
        }
        let cond = self.parse_expr(0, true);
        let body = self.parse_block();
        let end = self.pos.saturating_sub(1);
        self.new_expr(
            start,
            start,
            end,
            ExprKind::While {
                names,
                cond: Box::new(cond),
                body,
            },
        )
    }

    /// Parse a path and whatever follows it: macro call, struct literal,
    /// call, or a bare path.
    fn parse_path_expr(&mut self, start: usize, no_struct: bool) -> Expr {
        let mut segs = Vec::new();
        let mut last_ti = start;
        while let Some(t) = self.cur() {
            if t.kind == TokenKind::Ident {
                segs.push(t.text.clone());
                last_ti = self.bump();
                // Turbofish `::<…>`.
                if self.is_p(self.pos, ':') && self.is_p(self.pos + 1, ':') {
                    if self.is_p(self.pos + 2, '<') {
                        self.bump();
                        self.bump();
                        self.skip_generics();
                        break;
                    }
                    if self
                        .at(self.pos + 2)
                        .is_some_and(|t| t.kind == TokenKind::Ident)
                    {
                        self.bump();
                        self.bump();
                        continue;
                    }
                }
            }
            break;
        }
        if segs.is_empty() {
            self.bump();
            return self.new_expr(start, start, start, ExprKind::Opaque);
        }
        // Macro call `name!(…)` / `name![…]` / `name!{…}`.
        if self.is_p(self.pos, '!')
            && (self.is_p(self.pos + 1, '(')
                || self.is_p(self.pos + 1, '[')
                || self.is_p(self.pos + 1, '{'))
        {
            self.bump(); // `!`
            let open = self.cur().map(|t| t.text.chars().next().unwrap_or('('));
            let close = match open {
                Some('[') => ']',
                Some('{') => '}',
                _ => ')',
            };
            self.bump(); // opening delimiter
            let mut args = Vec::new();
            while let Some(t) = self.cur() {
                if t.is_punct(close) {
                    break;
                }
                let before = self.pos;
                args.push(self.parse_expr(0, false));
                if self.is_p(self.pos, ',') || self.is_p(self.pos, ';') || self.pos == before {
                    self.bump();
                }
                if self.is_p(self.pos, close) {
                    break;
                }
            }
            let end = if self.is_p(self.pos, close) {
                self.bump()
            } else {
                self.pos.saturating_sub(1)
            };
            let name = segs.last().cloned().unwrap_or_default();
            let e = self.new_expr(last_ti, start, end, ExprKind::MacroCall { name, args });
            return self.postfix(e, no_struct);
        }
        // Struct literal `Path { field: expr, … }`.
        if !no_struct && self.is_p(self.pos, '{') && self.looks_like_struct_lit() {
            self.bump(); // `{`
            let mut fields = Vec::new();
            let mut rest = None;
            while let Some(t) = self.cur() {
                if t.is_punct('}') {
                    break;
                }
                if t.is_punct('.') && self.is_p(self.pos + 1, '.') {
                    self.bump();
                    self.bump();
                    rest = Some(Box::new(self.parse_expr(0, false)));
                    break;
                }
                if t.kind == TokenKind::Ident {
                    let fname = t.text.clone();
                    let fti = self.bump();
                    if self.is_p(self.pos, ':') && !self.is_p(self.pos + 1, ':') {
                        self.bump();
                        let val = self.parse_expr(0, false);
                        fields.push((fname, val));
                    } else {
                        // Shorthand `Struct { field }`.
                        let path =
                            self.new_expr(fti, fti, fti, ExprKind::Path(vec![fname.clone()]));
                        fields.push((fname, path));
                    }
                    if self.is_p(self.pos, ',') {
                        self.bump();
                    }
                    continue;
                }
                self.bump();
            }
            let end = if self.is_p(self.pos, '}') {
                self.bump()
            } else {
                self.pos.saturating_sub(1)
            };
            let e = self.new_expr(
                last_ti,
                start,
                end,
                ExprKind::StructLit {
                    path: segs,
                    fields,
                    rest,
                },
            );
            return self.postfix(e, no_struct);
        }
        let e = self.new_expr(last_ti, start, last_ti, ExprKind::Path(segs));
        self.postfix(e, no_struct)
    }

    /// With `pos` at a `{` following a path: does this open a struct
    /// literal rather than a block?
    fn looks_like_struct_lit(&self) -> bool {
        if self.is_p(self.pos + 1, '}') {
            return true;
        }
        if self.is_p(self.pos + 1, '.') && self.is_p(self.pos + 2, '.') {
            return true;
        }
        if self
            .at(self.pos + 1)
            .is_some_and(|t| t.kind == TokenKind::Ident)
        {
            // `ident:` (not `::`), `ident,` or `ident}` → field list.
            if self.is_p(self.pos + 2, ':') && !self.is_p(self.pos + 3, ':') {
                return true;
            }
            if self.is_p(self.pos + 2, ',') || self.is_p(self.pos + 2, '}') {
                return true;
            }
        }
        false
    }

    /// Postfix loop: `.field`, `.method(…)`, `?`, `(…)`, `[…]`, `as T`.
    fn postfix(&mut self, mut e: Expr, no_struct: bool) -> Expr {
        while let Some(t) = self.cur() {
            if t.is_punct('.') {
                // Not a range (`..`).
                if self.is_p(self.pos + 1, '.') {
                    break;
                }
                let Some(next) = self.at(self.pos + 1) else {
                    break;
                };
                if next.kind == TokenKind::Ident {
                    self.bump(); // `.`
                    let name = next.text.clone();
                    let name_ti = self.bump();
                    // Turbofish on methods: `.collect::<…>()`.
                    if self.is_p(self.pos, ':') && self.is_p(self.pos + 1, ':') {
                        self.bump();
                        self.bump();
                        self.skip_generics();
                    }
                    if self.is_p(self.pos, '(') {
                        self.bump();
                        let mut args = Vec::new();
                        while let Some(t2) = self.cur() {
                            if t2.is_punct(')') {
                                break;
                            }
                            let before = self.pos;
                            args.push(self.parse_expr(0, false));
                            if self.is_p(self.pos, ',') || self.pos == before {
                                self.bump();
                            }
                        }
                        let end = if self.is_p(self.pos, ')') {
                            self.bump()
                        } else {
                            self.pos.saturating_sub(1)
                        };
                        let start = e.start_ti;
                        e = self.new_expr(
                            name_ti,
                            start,
                            end,
                            ExprKind::MethodCall {
                                base: Box::new(e),
                                name,
                                args,
                            },
                        );
                    } else {
                        let start = e.start_ti;
                        e = self.new_expr(
                            name_ti,
                            start,
                            name_ti,
                            ExprKind::Field {
                                base: Box::new(e),
                                name,
                            },
                        );
                    }
                    continue;
                }
                if next.kind == TokenKind::Number {
                    // Tuple field `.0`.
                    self.bump();
                    let name = next.text.clone();
                    let name_ti = self.bump();
                    let start = e.start_ti;
                    e = self.new_expr(
                        name_ti,
                        start,
                        name_ti,
                        ExprKind::Field {
                            base: Box::new(e),
                            name,
                        },
                    );
                    continue;
                }
                break;
            }
            if t.is_punct('?') {
                let ti = self.bump();
                let start = e.start_ti;
                e = self.new_expr(ti, start, ti, ExprKind::Try { base: Box::new(e) });
                continue;
            }
            if t.is_punct('(') {
                self.bump();
                let mut args = Vec::new();
                while let Some(t2) = self.cur() {
                    if t2.is_punct(')') {
                        break;
                    }
                    let before = self.pos;
                    args.push(self.parse_expr(0, false));
                    if self.is_p(self.pos, ',') || self.pos == before {
                        self.bump();
                    }
                }
                let end = if self.is_p(self.pos, ')') {
                    self.bump()
                } else {
                    self.pos.saturating_sub(1)
                };
                let start = e.start_ti;
                let ti = e.ti;
                e = self.new_expr(
                    ti,
                    start,
                    end,
                    ExprKind::Call {
                        callee: Box::new(e),
                        args,
                    },
                );
                continue;
            }
            if t.is_punct('[') {
                self.bump();
                let index = self.parse_expr(0, false);
                let end = if self.is_p(self.pos, ']') {
                    self.bump()
                } else {
                    self.pos.saturating_sub(1)
                };
                let start = e.start_ti;
                let ti = e.ti;
                e = self.new_expr(
                    ti,
                    start,
                    end,
                    ExprKind::Index {
                        base: Box::new(e),
                        index: Box::new(index),
                    },
                );
                continue;
            }
            if t.is_ident("as") {
                let as_ti = self.bump();
                let ty_start = self.pos;
                let ty = self.collect_ty(&[
                    ',', ';', ')', ']', '}', '=', '<', '+', '-', '*', '/', '%', '&', '|', '^', '?',
                    '.',
                ]);
                let ty_end_ti = self.pos.saturating_sub(1).max(ty_start);
                let start = e.start_ti;
                e = self.new_expr(
                    as_ti,
                    start,
                    ty_end_ti,
                    ExprKind::Cast {
                        base: Box::new(e),
                        ty,
                        ty_end_ti,
                    },
                );
                continue;
            }
            break;
        }
        // Tighter-than-binary handled; leave binary to the caller.
        let _ = no_struct;
        e
    }
}

enum PrattOp {
    Bin(BinOp),
    Assign(Option<BinOp>),
    Range,
}

/// Width in bits of an integer-literal suffix (0 = unsuffixed).
fn int_suffix_width(text: &str) -> u16 {
    for (suffix, w) in [
        ("u8", 8u16),
        ("i8", 8),
        ("u16", 16),
        ("i16", 16),
        ("u32", 32),
        ("i32", 32),
        ("u64", 64),
        ("i64", 64),
        ("u128", 128),
        ("i128", 128),
        ("usize", 64),
        ("isize", 64),
    ] {
        if text.ends_with(suffix) {
            return w;
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;

    fn parse_src(src: &str) -> File {
        let toks = lexer::lex(src);
        let code: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect();
        parse(&toks, &code)
    }

    #[test]
    fn fn_signatures_params_and_ret() {
        let f = parse_src(
            "impl Conn { pub fn on_segment(&mut self, seg: &TcpSegment) -> Vec<TcpSegment> { seg } }",
        );
        assert_eq!(f.functions.len(), 1);
        let func = &f.functions[0];
        assert_eq!(func.name, "on_segment");
        assert_eq!(func.self_ty.as_deref(), Some("Conn"));
        assert_eq!(
            func.params,
            vec![("seg".to_string(), "&TcpSegment".to_string())]
        );
        assert_eq!(func.ret.as_deref(), Some("Vec<TcpSegment>"));
    }

    #[test]
    fn struct_fields_are_recorded() {
        let f = parse_src("pub struct Tcb { pub snd_nxt: u32, pub buffered: Vec<u8> }");
        let tcb = f.structs.get("Tcb").expect("struct parsed");
        assert_eq!(tcb.get("snd_nxt").map(String::as_str), Some("u32"));
        assert_eq!(tcb.get("buffered").map(String::as_str), Some("Vec<u8>"));
    }

    #[test]
    fn binary_comparison_parses_with_operands() {
        let f = parse_src("fn f(a: u32, b: u32) -> bool { a < b }");
        let body = f.functions[0].body.as_ref().expect("body");
        let Stmt::Expr { expr, .. } = &body.stmts[0] else {
            panic!("expected expr stmt");
        };
        let ExprKind::Binary { op, lhs, rhs } = &expr.kind else {
            panic!("expected binary, got {:?}", expr.kind);
        };
        assert_eq!(*op, BinOp::Lt);
        assert!(matches!(&lhs.kind, ExprKind::Path(p) if p == &vec!["a".to_string()]));
        assert!(matches!(&rhs.kind, ExprKind::Path(p) if p == &vec!["b".to_string()]));
    }

    #[test]
    fn method_chains_and_casts() {
        let f = parse_src("fn f(v: Vec<u8>) { let n = v.len() as u32; }");
        let body = f.functions[0].body.as_ref().expect("body");
        let Stmt::Let { names, init, .. } = &body.stmts[0] else {
            panic!("expected let");
        };
        assert_eq!(names, &vec!["n".to_string()]);
        let init = init.as_ref().expect("init");
        let ExprKind::Cast { base, ty, .. } = &init.kind else {
            panic!("expected cast, got {:?}", init.kind);
        };
        assert_eq!(ty, "u32");
        assert!(matches!(&base.kind, ExprKind::MethodCall { name, .. } if name == "len"));
    }

    #[test]
    fn let_underscore_is_flagged() {
        let f = parse_src("fn f() { let _ = g(); let x = h(); }");
        let body = f.functions[0].body.as_ref().expect("body");
        let Stmt::Let { underscore, .. } = &body.stmts[0] else {
            panic!()
        };
        assert!(*underscore);
        let Stmt::Let {
            underscore, names, ..
        } = &body.stmts[1]
        else {
            panic!()
        };
        assert!(!underscore);
        assert_eq!(names, &vec!["x".to_string()]);
    }

    #[test]
    fn struct_literal_vs_block_disambiguation() {
        let f = parse_src(
            "fn f() { let s = TcpSegment { seq: 1, payload: p.to_vec() }; match s.seq { _ => {} } }",
        );
        let body = f.functions[0].body.as_ref().expect("body");
        let Stmt::Let { init, .. } = &body.stmts[0] else {
            panic!()
        };
        assert!(matches!(
            &init.as_ref().unwrap().kind,
            ExprKind::StructLit { path, fields, .. }
                if path == &vec!["TcpSegment".to_string()] && fields.len() == 2
        ));
        let Stmt::Expr { expr, .. } = &body.stmts[1] else {
            panic!()
        };
        assert!(matches!(&expr.kind, ExprKind::Match { .. }));
    }

    #[test]
    fn shifts_compose_from_adjacent_angles() {
        let f = parse_src("fn f(x: u8) -> u8 { (x as u8) << 4 }");
        let body = f.functions[0].body.as_ref().expect("body");
        let Stmt::Expr { expr, .. } = &body.stmts[0] else {
            panic!()
        };
        let ExprKind::Binary { op, .. } = &expr.kind else {
            panic!("got {:?}", expr.kind)
        };
        assert_eq!(*op, BinOp::Shl);
    }

    #[test]
    fn wrapping_calls_keep_receiver_structure() {
        let f = parse_src("fn f(s: S) { s.tcb.rcv_nxt = s.tcb.rcv_nxt.wrapping_add(1); }");
        let body = f.functions[0].body.as_ref().expect("body");
        let Stmt::Expr { expr, .. } = &body.stmts[0] else {
            panic!()
        };
        let ExprKind::Assign { op: None, rhs, .. } = &expr.kind else {
            panic!("got {:?}", expr.kind)
        };
        assert!(matches!(
            &rhs.kind,
            ExprKind::MethodCall { name, .. } if name == "wrapping_add"
        ));
    }

    #[test]
    fn macro_calls_parse_arguments() {
        let f = parse_src("fn f(out: String) { let _ = writeln!(out, \"{}\", 1 + 2); }");
        let body = f.functions[0].body.as_ref().expect("body");
        let Stmt::Let {
            init, underscore, ..
        } = &body.stmts[0]
        else {
            panic!()
        };
        assert!(*underscore);
        assert!(matches!(
            &init.as_ref().unwrap().kind,
            ExprKind::MacroCall { name, args } if name == "writeln" && args.len() == 3
        ));
    }

    #[test]
    fn if_let_and_while_let_bind_names() {
        let f = parse_src("fn f(x: Option<u32>) { if let Some(v) = x { v; } }");
        let body = f.functions[0].body.as_ref().expect("body");
        let Stmt::Expr { expr, .. } = &body.stmts[0] else {
            panic!()
        };
        let ExprKind::If { names, .. } = &expr.kind else {
            panic!("got {:?}", expr.kind)
        };
        assert_eq!(names, &vec!["v".to_string()]);
    }

    #[test]
    fn for_loops_and_ranges() {
        let f = parse_src("fn f(v: Vec<u8>) { for b in v[1..] { b; } }");
        let body = f.functions[0].body.as_ref().expect("body");
        let Stmt::Expr { expr, .. } = &body.stmts[0] else {
            panic!()
        };
        let ExprKind::For { names, iter, .. } = &expr.kind else {
            panic!("got {:?}", expr.kind)
        };
        assert_eq!(names, &vec!["b".to_string()]);
        assert!(matches!(&iter.kind, ExprKind::Index { .. }));
    }

    #[test]
    fn closures_parse_bodies() {
        let f = parse_src("fn f() { let g = |i| (i % 251) as u8; }");
        let body = f.functions[0].body.as_ref().expect("body");
        let Stmt::Let { init, .. } = &body.stmts[0] else {
            panic!()
        };
        let ExprKind::Closure { names, body } = &init.as_ref().unwrap().kind else {
            panic!()
        };
        assert_eq!(names, &vec!["i".to_string()]);
        assert!(matches!(&body.kind, ExprKind::Cast { .. }));
    }

    #[test]
    fn malformed_input_degrades_without_looping() {
        // Must terminate and produce something for garbage input.
        let f = parse_src("fn f() { let = ; @@@ } fn g() {}");
        assert_eq!(f.functions.len(), 2);
    }
}
