//! Machine-readable diagnostics: `file:line:col  RULE  message`.

use crate::fix::Fix;
use std::fmt;

/// How severe a diagnostic is. Warnings still fail the run (CI treats any
/// diagnostic as a failure) but are labelled so humans can triage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    Error,
    Warning,
}

/// One finding, positioned at a 1-based line and column.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub file: String,
    pub line: u32,
    pub col: u32,
    pub rule: &'static str,
    pub severity: Severity,
    pub message: String,
    /// A machine-applicable fix, when the rule can scaffold one (`--fix`).
    pub fix: Option<Fix>,
}

impl Diagnostic {
    pub fn error(
        file: &str,
        line: u32,
        col: u32,
        rule: &'static str,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            file: file.to_string(),
            line,
            col,
            rule,
            severity: Severity::Error,
            message: message.into(),
            fix: None,
        }
    }

    /// Attach a machine-applicable fix.
    pub fn with_fix(mut self, fix: Fix) -> Self {
        self.fix = Some(fix);
        self
    }

    pub fn warning(
        file: &str,
        line: u32,
        col: u32,
        rule: &'static str,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            ..Diagnostic::error(file, line, col, rule, message)
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let prefix = match self.severity {
            Severity::Error => "",
            Severity::Warning => "warning: ",
        };
        write!(
            f,
            "{}:{}:{}  {}  {}{}",
            self.file, self.line, self.col, self.rule, prefix, self.message
        )
    }
}

/// Stable output order: by file, then position, then rule code.
pub fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_machine_readable() {
        let d = Diagnostic::error("crates/sim/src/engine.rs", 12, 5, "D002", "wall-clock time");
        assert_eq!(
            d.to_string(),
            "crates/sim/src/engine.rs:12:5  D002  wall-clock time"
        );
    }

    #[test]
    fn warnings_are_labelled() {
        let d = Diagnostic::warning("a.rs", 1, 1, "W003", "unused waiver");
        assert_eq!(d.to_string(), "a.rs:1:1  W003  warning: unused waiver");
    }

    #[test]
    fn sort_orders_by_file_then_position() {
        let mut ds = vec![
            Diagnostic::error("b.rs", 1, 1, "D001", "x"),
            Diagnostic::error("a.rs", 9, 2, "D002", "x"),
            Diagnostic::error("a.rs", 9, 1, "D001", "x"),
        ];
        sort(&mut ds);
        let order: Vec<_> = ds.iter().map(|d| (d.file.clone(), d.line, d.col)).collect();
        assert_eq!(
            order,
            vec![
                ("a.rs".to_string(), 9, 1),
                ("a.rs".to_string(), 9, 2),
                ("b.rs".to_string(), 1, 1)
            ]
        );
    }
}
