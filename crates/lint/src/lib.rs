#![forbid(unsafe_code)]
//! `jitsu-lint` — the workspace determinism & safety analyzer.
//!
//! Every figure and benchmark this repository produces rests on bit-for-bit
//! deterministic simulation. The CI determinism gate (run `reproduce`
//! twice, diff the bytes) only exercises one seeded path; this crate makes
//! the invariant a *static* property of the whole workspace by walking
//! every `.rs` file under `crates/`, `src/`, and `tests/` and enforcing:
//!
//! | rule | what it forbids |
//! |------|-----------------|
//! | D001 | iteration over `HashMap`/`HashSet` bindings in non-test code |
//! | D002 | wall-clock time (`Instant`, `SystemTime`) anywhere |
//! | D003 | ambient randomness (`thread_rng`, `from_entropy`, `rand::random`) |
//! | D004 | OS concurrency (`thread::spawn`, `Mutex`, `RwLock`) in sim-logic crates |
//! | P001 | `unwrap()`/`expect()`/`panic!` in non-test core-crate code |
//! | H001 | a crate root missing `#![forbid(unsafe_code)]` |
//!
//! Violations are silenced in place with
//! `// jitsu-lint: allow(RULE, "reason")`; the reason is mandatory (W001),
//! unknown rules are errors (W002) and waivers that silence nothing are
//! warnings (W003). Diagnostics print as `file:line:col  RULE  message`.
//!
//! The crate has zero dependencies and no parser: a minimal lexer
//! ([`lexer`]) that gets strings, raw strings, comments, char literals and
//! lifetimes right is enough to phrase every rule over the token stream.

pub mod analyzer;
pub mod config;
pub mod diagnostics;
pub mod lexer;
pub mod rules;
pub mod waiver;
pub mod walk;

pub use analyzer::{analyze_file, analyze_workspace};
pub use config::Config;
pub use diagnostics::{Diagnostic, Severity};
