#![forbid(unsafe_code)]
//! `jitsu-lint` — the workspace determinism & safety analyzer.
//!
//! Every figure and benchmark this repository produces rests on bit-for-bit
//! deterministic simulation. The CI determinism gate (run `reproduce`
//! twice, diff the bytes) only exercises one seeded path; this crate makes
//! the invariant a *static* property of the whole workspace by walking
//! every `.rs` file under `crates/`, `src/`, and `tests/` and enforcing:
//!
//! | rule | what it forbids |
//! |------|-----------------|
//! | D001 | iteration over `HashMap`/`HashSet` bindings in non-test code |
//! | D002 | wall-clock time (`Instant`, `SystemTime`) anywhere |
//! | D003 | ambient randomness (`thread_rng`, `from_entropy`, `rand::random`) |
//! | D004 | OS concurrency (`thread::spawn`, `Mutex`, `RwLock`) in sim-logic crates |
//! | P001 | `unwrap()`/`expect()`/`panic!` in non-test core-crate code |
//! | H001 | a crate root missing `#![forbid(unsafe_code)]` |
//! | C001 | raw ordering/arithmetic on TCP sequence numbers (RFC 1982) |
//! | A001 | frame-buffer copies in the hot path beyond the ratchet budget |
//! | R001 | discarded `Result` values in non-test core-crate code |
//! | N001 | unchecked narrowing `as` casts in wire-format crates |
//!
//! Violations are silenced in place with
//! `// jitsu-lint: allow(RULE, "reason")`; the reason is mandatory (W001),
//! unknown rules are errors (W002) and waivers that silence nothing are
//! warnings (W003). A001 is additionally governed by the committed ratchet
//! budget `crates/lint/budget.toml` ([`budget`]): exact counts pass, growth
//! and slack both fail. Diagnostics print as `file:line:col  RULE  message`
//! or as SARIF 2.1.0 ([`sarif`]) with `--format sarif`; the mechanical
//! subset of R001/N001 findings carry machine-applicable fixes ([`fix`],
//! `--fix`).
//!
//! The crate still has zero dependencies. The first six rules are phrased
//! over the raw token stream of a minimal lexer ([`lexer`]); the four
//! shape-sensitive rules run on a lightweight recursive-descent AST
//! ([`ast`]) with a binding-aware classification pass ([`sema`]) that
//! tracks declared types through `let`s, params and struct fields.

pub mod analyzer;
pub mod ast;
pub mod budget;
pub mod config;
pub mod diagnostics;
pub mod fix;
pub mod lexer;
pub mod rules;
pub mod sarif;
pub mod sema;
pub mod waiver;
pub mod walk;

pub use analyzer::{analyze_file, analyze_file_indexed, analyze_workspace};
pub use config::Config;
pub use diagnostics::{Diagnostic, Severity};
