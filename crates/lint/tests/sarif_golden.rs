//! Golden test for the SARIF 2.1.0 emitter: the diagnostics from the
//! dataflow-rule fixtures must serialize to exactly the committed
//! `tests/fixtures/lint.sarif`, and that document must be well-formed JSON.
//!
//! Regenerate after an intentional change with
//! `UPDATE_EXPECT=1 cargo test -p lint --test sarif_golden`.

use lint::Config;
use std::fs;
use std::path::PathBuf;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn fixture_diags() -> Vec<lint::Diagnostic> {
    let mut diags = Vec::new();
    for (stem, pretend) in [
        ("r001", "crates/jitsu/src/fixture.rs"),
        ("n001", "crates/netstack/src/fixture.rs"),
        ("waiver_unknown_rule", "crates/xenstore/src/fixture.rs"),
    ] {
        let source = fs::read_to_string(fixture_dir().join(format!("{stem}.rs")))
            .unwrap_or_else(|e| panic!("read fixture {stem}: {e}"));
        diags.extend(lint::analyze_file(pretend, &source, &Config::default()));
    }
    diags
}

#[test]
fn sarif_output_matches_golden() {
    let sarif = lint::sarif::to_sarif(&fixture_diags());
    let golden_path = fixture_dir().join("lint.sarif");
    if std::env::var_os("UPDATE_EXPECT").is_some() {
        fs::write(&golden_path, &sarif).expect("write golden");
        return;
    }
    let want = fs::read_to_string(&golden_path).expect("missing golden lint.sarif");
    assert_eq!(
        sarif, want,
        "SARIF output drifted from tests/fixtures/lint.sarif"
    );
}

#[test]
fn sarif_output_is_well_formed_json() {
    let sarif = lint::sarif::to_sarif(&fixture_diags());
    assert!(lint::sarif::json_is_well_formed(&sarif));
    // The invariants CI consumers rely on: schema pin, driver name, and one
    // result per diagnostic with a ruleId.
    assert!(sarif.contains("sarif-2.1.0.json"));
    assert!(sarif.contains("\"jitsu-lint\""));
    let results = sarif.matches("\"ruleId\"").count();
    // Rule metadata also mentions rule ids via "id"; count only results.
    assert_eq!(results, fixture_diags().len());
}

#[test]
fn empty_workspace_sarif_is_still_valid() {
    let sarif = lint::sarif::to_sarif(&[]);
    assert!(lint::sarif::json_is_well_formed(&sarif));
    assert!(sarif.contains("\"results\": ["));
    assert_eq!(sarif.matches("\"ruleId\"").count(), 0);
}
