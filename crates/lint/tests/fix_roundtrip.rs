//! Round-trip test for `--fix`: apply every machine-applicable fix the
//! analyzer attaches to the R001/N001 fixtures, re-analyze the rewritten
//! source, and require the result to be completely clean — the scaffolds
//! must silence the original finding without tripping any other rule
//! (in particular, the `.expect` they introduce must arrive pre-waived
//! for P001).

use lint::Config;
use std::fs;
use std::path::PathBuf;

fn fixture(stem: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("tests/fixtures/{stem}.rs"));
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read fixture {stem}: {e}"))
}

fn roundtrip(stem: &str, pretend: &str) -> (String, Vec<lint::Diagnostic>) {
    let cfg = Config::default();
    let source = fixture(stem);
    let before = lint::analyze_file(pretend, &source, &cfg);
    let fixes: Vec<_> = before.iter().filter_map(|d| d.fix.clone()).collect();
    assert!(
        !fixes.is_empty(),
        "{stem}: no machine-applicable fixes attached"
    );
    let fixed = lint::fix::apply(&source, &fixes);
    assert_ne!(fixed, source, "{stem}: fixes did not change the source");
    let after = lint::analyze_file(pretend, &fixed, &cfg);
    (fixed, after)
}

#[test]
fn r001_fixes_leave_the_fixture_clean() {
    let (fixed, after) = roundtrip("r001", "crates/jitsu/src/fixture.rs");
    assert!(
        after.is_empty(),
        "diagnostics remain after fixing r001:\n{}\n--- fixed source ---\n{fixed}",
        after
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    // The discarded results are now consumed by `.expect`, each pre-waived.
    assert!(fixed.contains(".expect(\"jitsu-lint(R001):"));
    assert!(fixed.contains("jitsu-lint: allow(P001,"));
    assert!(!fixed.contains("let _ = might_fail(1)"));
}

#[test]
fn n001_fixes_leave_the_fixture_clean() {
    let (fixed, after) = roundtrip("n001", "crates/netstack/src/fixture.rs");
    assert!(
        after.is_empty(),
        "diagnostics remain after fixing n001:\n{}\n--- fixed source ---\n{fixed}",
        after
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(fixed.contains("u16::try_from(len)"));
    assert!(fixed.contains("u8::try_from(port)"));
    // Widening casts were left alone.
    assert!(fixed.contains("let a = x as u32;"));
}
