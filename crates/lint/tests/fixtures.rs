//! Golden-file tests for the analyzer: each known-bad fixture under
//! `tests/fixtures/` is analyzed under a *pretend* workspace path (which is
//! how a fixture opts into crate-root / core-crate / sim-logic roles), and
//! the rendered diagnostics must match its `.expected` file byte for byte.
//!
//! Regenerate goldens after an intentional rule change with
//! `UPDATE_EXPECT=1 cargo test -p lint --test fixtures`.

use lint::Config;
use std::fs;
use std::path::PathBuf;

/// (fixture file stem, pretend workspace-relative path it is analyzed as)
const FIXTURES: &[(&str, &str)] = &[
    ("d001", "crates/jitsu/src/fixture.rs"),
    ("d002", "crates/platform/src/fixture.rs"),
    ("d003", "crates/bench/src/fixture.rs"),
    ("d004", "crates/netstack/src/fixture.rs"),
    ("p001", "crates/xenstore/src/fixture.rs"),
    ("c001", "crates/netstack/src/fixture.rs"),
    ("a001", "crates/netstack/src/fixture.rs"),
    ("r001", "crates/jitsu/src/fixture.rs"),
    ("n001", "crates/netstack/src/fixture.rs"),
    ("h001_missing", "crates/sim/src/lib.rs"),
    ("h001_ok", "crates/sim/src/lib.rs"),
    ("waiver_ok", "crates/xenstore/src/fixture.rs"),
    ("waiver_missing_reason", "crates/xenstore/src/fixture.rs"),
    ("waiver_unknown_rule", "crates/xenstore/src/fixture.rs"),
    ("waiver_unused", "crates/xenstore/src/fixture.rs"),
];

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn render(stem: &str, pretend_path: &str) -> String {
    let source = fs::read_to_string(fixture_dir().join(format!("{stem}.rs")))
        .unwrap_or_else(|e| panic!("read fixture {stem}: {e}"));
    let diags = lint::analyze_file(pretend_path, &source, &Config::default());
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    out
}

#[test]
fn fixtures_match_expected_diagnostics() {
    let update = std::env::var_os("UPDATE_EXPECT").is_some();
    let mut failures = Vec::new();
    for (stem, pretend) in FIXTURES {
        let got = render(stem, pretend);
        let expected_path = fixture_dir().join(format!("{stem}.expected"));
        if update {
            fs::write(&expected_path, &got).expect("write golden");
            continue;
        }
        let want = fs::read_to_string(&expected_path)
            .unwrap_or_else(|e| panic!("missing golden {stem}.expected: {e}"));
        if got != want {
            failures.push(format!(
                "== {stem} ==\n--- expected ---\n{want}--- got ---\n{got}"
            ));
        }
    }
    assert!(failures.is_empty(), "\n{}", failures.join("\n"));
}

/// Every rule must be *proven to fire*: the union of fixture diagnostics
/// must mention each rule code at least once, plus each waiver-grammar
/// code. A rule that silently stops firing is itself a lint regression.
#[test]
fn every_rule_fires_somewhere_in_the_fixture_suite() {
    let mut all = String::new();
    for (stem, pretend) in FIXTURES {
        all.push_str(&render(stem, pretend));
    }
    for rule in [
        "D001", "D002", "D003", "D004", "P001", "H001", "C001", "A001", "R001", "N001", "W001",
        "W002", "W003",
    ] {
        assert!(
            all.contains(&format!("  {rule}  ")),
            "rule {rule} never fired across the fixture suite"
        );
    }
}

/// The waived fixture must be completely clean — waivers both silence the
/// finding and count as used.
#[test]
fn waived_fixture_is_clean() {
    assert_eq!(render("waiver_ok", "crates/xenstore/src/fixture.rs"), "");
}

/// The compliant crate root produces no diagnostics.
#[test]
fn compliant_crate_root_is_clean() {
    assert_eq!(render("h001_ok", "crates/sim/src/lib.rs"), "");
}
