//! The real workspace must be jitsu-lint clean: this makes the determinism
//! invariant a *tier-1 test* property, not just a CI step — `cargo test`
//! from a clean checkout re-audits every file the analyzer covers.

use lint::Config;
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn workspace_has_no_diagnostics() {
    let diags = lint::analyze_workspace(&workspace_root(), &Config::default())
        .expect("workspace is readable");
    let rendered: Vec<String> = diags.iter().map(|d| d.to_string()).collect();
    assert!(
        rendered.is_empty(),
        "jitsu-lint found {} diagnostic(s):\n{}",
        rendered.len(),
        rendered.join("\n")
    );
}

#[test]
fn every_waiver_in_the_tree_documents_its_reason() {
    // The grammar already rejects reason-less waivers (W001, checked above);
    // this test additionally inventories the waivers so a PR that adds one
    // shows up in the diff of `cargo test -p lint -- --nocapture`.
    let root = workspace_root();
    let cfg = Config::default();
    let mut total = 0usize;
    for rel in lint::walk::rust_files(&root, &cfg).expect("walk") {
        let source = std::fs::read_to_string(root.join(&rel)).expect("read");
        let (waivers, errors) = lint::waiver::collect(&rel, &lint::lexer::lex(&source));
        assert!(
            errors.is_empty(),
            "waiver grammar errors in {rel}: {errors:?}"
        );
        for w in &waivers {
            assert!(
                !w.reason.trim().is_empty(),
                "empty waiver reason in {rel}:{}",
                w.line
            );
            total += 1;
        }
    }
    println!("workspace carries {total} documented jitsu-lint waivers");
    assert!(
        total > 0,
        "the P001 audit left documented waivers in the tree"
    );
}
