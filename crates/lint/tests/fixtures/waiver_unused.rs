// Fixture: a well-formed waiver that silences nothing is a warning, so
// stale waivers surface when the violation they covered goes away.
fn f() -> u32 {
    // jitsu-lint: allow(P001, "this line no longer unwraps anything")
    41 + 1
}
