// Fixture: correctly waived violations produce no diagnostics — trailing
// waivers, standalone waivers, and stacked waivers for different rules.
use std::collections::HashMap;

fn waived(x: Option<u32>) -> u32 {
    let m: HashMap<u32, u32> = HashMap::new();
    // jitsu-lint: allow(D001, "counting is order-insensitive")
    // jitsu-lint: allow(N001, "an in-memory map holds far fewer than 2^32 entries")
    let n = m.values().count() as u32;
    let v = x.unwrap(); // jitsu-lint: allow(P001, "caller guarantees Some")
    // jitsu-lint: allow(D001, "counting is order-insensitive")
    // jitsu-lint: allow(P001, "empty map means first() is None, guarded above")
    let k = m.keys().next().copied().unwrap_or(0) + m.values().next().copied().unwrap();
    n + v + k
}
