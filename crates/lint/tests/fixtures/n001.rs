// Fixture: unchecked narrowing `as` casts in wire-format code. Widening
// and same-width casts are fine.

fn narrows(len: usize, port: u32, stamp: u64) -> (u16, u8, u16) {
    let l = len as u16;
    let p = port as u8;
    let s = stamp as u16;
    (l, p, s)
}

fn widens(x: u16) -> u64 {
    let a = x as u32;
    (a as u64) + 1
}
