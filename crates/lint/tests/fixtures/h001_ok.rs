#![forbid(unsafe_code)]
// Fixture: a compliant crate root — no diagnostics.
pub fn entry() {}
