// Fixture: D002 fires on any mention of a wall-clock type — imports,
// expressions, even inside test modules.
use std::time::Instant;

fn elapsed_ms() -> u128 {
    let start = Instant::now();
    start.elapsed().as_millis()
}

fn since_epoch() -> u64 {
    let now = std::time::SystemTime::now();
    let _ = now;
    0
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_in_tests_is_still_wall_clock() {
        let _ = std::time::Instant::now();
    }
}
