// Fixture: D003 fires on every ambient-entropy entry point.
fn ambient() -> u64 {
    let mut rng = rand::thread_rng();
    let seeded_from_os = rand::rngs::StdRng::from_entropy();
    let _ = (&mut rng, seeded_from_os);
    rand::random()
}
