// Fixture: D004 fires on real OS concurrency inside a sim-logic crate.
use std::sync::Mutex;
use std::sync::RwLock;

fn spawn_worker() {
    let shared = Mutex::new(0u32);
    let lock = RwLock::new(Vec::<u8>::new());
    let handle = std::thread::spawn(move || {
        let _ = shared.lock();
    });
    let _ = (lock, handle);
}
