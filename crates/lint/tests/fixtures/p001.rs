// Fixture: P001 fires on unwrap/expect/panic! in non-test core-crate code
// and stays quiet inside #[cfg(test)] modules.
fn risky(x: Option<u32>, y: Result<u32, String>) -> u32 {
    let a = x.unwrap();
    let b = y.expect("y is always Ok here");
    if a + b > 100 {
        panic!("overflow of the made-up budget");
    }
    // Non-panicking escape hatches are fine without waivers.
    let c = x.unwrap_or(0);
    a + b + c
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        assert_eq!(super::risky(Some(1), Ok(2)), 4);
    }
}
