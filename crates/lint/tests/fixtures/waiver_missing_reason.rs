// Fixture: waivers without a (non-empty) reason are themselves errors, and
// they do NOT silence the violation they sit on.
fn f(x: Option<u32>) -> u32 {
    // jitsu-lint: allow(P001)
    let a = x.unwrap();
    // jitsu-lint: allow(P001, "")
    let b = x.unwrap();
    a + b
}
