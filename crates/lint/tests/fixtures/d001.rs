// Fixture: D001 must fire on every flavour of hash-collection iteration —
// field receivers, let-bound maps, set loops — and stay quiet for ordered
// collections and test modules.
use std::collections::{BTreeMap, HashMap, HashSet};

struct Stats {
    table: HashMap<String, u32>,
    ordered: BTreeMap<String, u32>,
}

impl Stats {
    fn sum(&self) -> u32 {
        self.table.values().sum()
    }

    fn ordered_sum(&self) -> u32 {
        self.ordered.values().sum()
    }
}

fn loops() {
    let mut set = HashSet::new();
    set.insert(1u32);
    for x in &set {
        let _ = x;
    }
    let m: HashMap<u32, u32> = HashMap::new();
    for (k, v) in m.iter() {
        let _ = (k, v);
    }
    let lookup_only: HashMap<u32, u32> = HashMap::new();
    let _ = lookup_only.get(&1);
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn order_insensitive_assertion() {
        let m: HashMap<u32, u32> = HashMap::new();
        assert_eq!(m.values().count(), 0);
    }
}
