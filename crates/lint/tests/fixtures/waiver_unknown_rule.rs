// Fixture: waiving a rule the analyzer does not define is an error.
fn f() -> u32 {
    // jitsu-lint: allow(D999, "this rule does not exist")
    42
}
