// Fixture: raw ordering comparisons and non-wrapping arithmetic on TCP
// sequence numbers. Wrapping ops and `seq_*` helper bodies are exempt.

fn bad_ordering(seq: u32, ack: u32) -> bool {
    seq < ack
}

fn bad_arith(snd_nxt: u32, len: u32) -> u32 {
    let mut seq = snd_nxt + len;
    seq += 1;
    seq
}

fn good_wrapping(snd_nxt: u32, len: u32) -> u32 {
    snd_nxt.wrapping_add(len).wrapping_add(1)
}

fn seq_lt(a: u32, b: u32) -> bool {
    (a.wrapping_sub(b) as i32) < 0
}

fn unrelated_math(count: u32, total: u32) -> bool {
    count + 1 < total
}
