// Fixture: a crate root (pretend path crates/x/src/lib.rs) that dropped
// `#![forbid(unsafe_code)]` — H001 must fail the run.
pub fn entry() {}
