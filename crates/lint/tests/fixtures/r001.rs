// Fixture: discarded `Result` values — both `let _ =` bindings and bare
// semicolon statements. Non-Result discards and named bindings are fine,
// and a reasoned waiver silences the finding.

fn might_fail(x: u32) -> Result<u32, String> {
    if x == 0 {
        Err("zero".to_string())
    } else {
        Ok(x)
    }
}

fn infallible(x: u32) -> u32 {
    x.wrapping_add(1)
}

fn discards() -> u32 {
    let _ = might_fail(1);
    might_fail(2);
    let kept = might_fail(3);
    let _ = infallible(4);
    // jitsu-lint: allow(R001, "fixture: this discard is intentional")
    let _ = might_fail(5);
    kept.unwrap_or(0)
}
