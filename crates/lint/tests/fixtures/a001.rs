// Fixture: frame-buffer copies in the hot path — `.clone()`/`.to_vec()` on
// byte buffers and frame types. Length queries and non-buffer clones are
// not copies.

struct EthernetFrame {
    payload: Vec<u8>,
}

fn copies(frame: &EthernetFrame, buf: &[u8]) -> usize {
    let whole = frame.clone();
    let payload = frame.payload.clone();
    let body = buf.to_vec();
    whole.payload.len() + payload.len() + body.len()
}

fn not_copies(frame: &EthernetFrame, label: &String) -> usize {
    let n = frame.payload.len();
    let s = label.clone();
    n + s.len()
}

struct FrameBuf {
    len: usize,
}

fn view_copies(view: &FrameBuf) -> usize {
    let owned = view.to_vec();
    owned.len()
}

fn view_shares(view: &FrameBuf) -> usize {
    let shared = view.clone();
    shared.len
}
