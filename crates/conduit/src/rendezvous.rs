//! Named-endpoint rendezvous over XenStore (§3.2.2).
//!
//! Figure 5's tree layout, reproduced here:
//!
//! ```text
//! /conduit/<service>            = "<server domid>"
//! /conduit/<service>/listen/<conn> = "<client domid>"   (create-restricted)
//! /conduit/<service>/established/<conn> = "<flow id>"
//! /local/domain/<server>/vchan/<conn>/{ring-ref,event-channel,domid}
//! /conduit/flows/<id>           = "(<state> (metadata...))"
//! ```
//!
//! A server registers its name, watches its `listen` directory and accepts
//! incoming connection requests by establishing a [`VchanPair`] and
//! publishing the grant/event-channel references under its domain's `vchan`
//! subtree, where only the participants can read them. Third parties can
//! neither observe nor interfere with connections that do not concern them
//! because the `listen` directory uses the create-restricted permission
//! extension (§3.2.3).

use crate::flows::{FlowState, FlowTable};
use crate::vchan::VchanPair;
use xen_sim::event_channel::EventChannelTable;
use xen_sim::grant_table::GrantTable;
use xenstore::{DomId, Error as XsError, PermLevel, Permissions, XenStore};

/// Errors from rendezvous operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConduitError {
    /// The named service is not registered.
    UnknownService(String),
    /// A XenStore operation failed.
    Store(XsError),
    /// vchan establishment failed.
    Vchan(String),
}

impl From<XsError> for ConduitError {
    fn from(e: XsError) -> Self {
        ConduitError::Store(e)
    }
}

/// A named conduit endpoint (a registered service).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Endpoint {
    /// The service name, e.g. `http_server` or `jitsud`.
    pub name: String,
    /// The domain serving it.
    pub dom: DomId,
}

/// An accepted connection, as returned by [`ConduitRegistry::accept`].
#[derive(Debug)]
pub struct AcceptedConnection {
    /// The connection name the client chose (e.g. `conn1`).
    pub conn: String,
    /// The client domain.
    pub client: DomId,
    /// The flow table entry.
    pub flow_id: u64,
    /// The established shared-memory channel.
    pub channel: VchanPair,
}

/// The rendezvous registry: stateless helpers over the store plus a flow-id
/// allocator.
#[derive(Debug, Default)]
pub struct ConduitRegistry {
    flows: FlowTable,
}

impl ConduitRegistry {
    /// Create a registry.
    pub fn new() -> ConduitRegistry {
        ConduitRegistry {
            flows: FlowTable::new(),
        }
    }

    fn service_path(name: &str) -> String {
        format!("/conduit/{name}")
    }

    fn listen_path(name: &str) -> String {
        format!("/conduit/{name}/listen")
    }

    fn established_path(name: &str) -> String {
        format!("/conduit/{name}/established")
    }

    fn vchan_path(server: DomId, conn: &str) -> String {
        format!("/local/domain/{}/vchan/{}", server.0, conn)
    }

    /// The watch token a server should use on its listen directory.
    pub fn listen_token(name: &str) -> String {
        format!("conduit-listen:{name}")
    }

    /// Register a service: record the owning domain, create the
    /// create-restricted `listen` directory, and watch it for connection
    /// requests. Registration is performed by dom0 on behalf of the server
    /// domain (as the toolstack does when it boots the unikernel), but the
    /// resulting keys are owned by the server.
    pub fn register(
        &mut self,
        xs: &mut XenStore,
        name: &str,
        server: DomId,
    ) -> Result<Endpoint, ConduitError> {
        let base = Self::service_path(name);
        xs.write(DomId::DOM0, None, &base, server.0.to_string().as_bytes())?;
        // The service node itself is world-readable so clients can resolve it.
        xs.set_perms(
            DomId::DOM0,
            None,
            &base,
            Permissions::with_default(server, PermLevel::Read),
        )?;
        xs.mkdir(DomId::DOM0, None, &Self::listen_path(name))?;
        xs.set_perms(
            DomId::DOM0,
            None,
            &Self::listen_path(name),
            Permissions::owned_by(server).create_restricted(),
        )?;
        xs.mkdir(DomId::DOM0, None, &Self::established_path(name))?;
        xs.set_perms(
            DomId::DOM0,
            None,
            &Self::established_path(name),
            Permissions::with_default(server, PermLevel::Read),
        )?;
        xs.watch(server, &Self::listen_path(name), &Self::listen_token(name))?;
        // Drain the initial synthetic event so later events mean real work.
        let _ = xs.take_watch_events(server);
        Ok(Endpoint {
            name: name.to_string(),
            dom: server,
        })
    }

    /// Resolve a service name to its serving domain.
    pub fn resolve(
        xs: &mut XenStore,
        requester: DomId,
        name: &str,
    ) -> Result<Endpoint, ConduitError> {
        match xs.read_string(requester, None, &Self::service_path(name)) {
            Ok(v) => {
                let dom = v
                    .trim()
                    .parse::<u32>()
                    .map_err(|_| ConduitError::UnknownService(name.to_string()))?;
                Ok(Endpoint {
                    name: name.to_string(),
                    dom: DomId(dom),
                })
            }
            Err(XsError::NoEntry(_)) => Err(ConduitError::UnknownService(name.to_string())),
            Err(e) => Err(ConduitError::Store(e)),
        }
    }

    /// List all registered service names.
    pub fn services(xs: &mut XenStore) -> Vec<String> {
        xs.directory(DomId::DOM0, None, "/conduit")
            .unwrap_or_default()
            .into_iter()
            .filter(|n| n != "flows")
            .collect()
    }

    /// A client requests a connection to `service` by writing its chosen
    /// connection name into the service's listen queue. Returns the resolved
    /// endpoint. (The connection becomes usable once the server accepts.)
    pub fn connect(
        xs: &mut XenStore,
        client: DomId,
        service: &str,
        conn: &str,
    ) -> Result<Endpoint, ConduitError> {
        let endpoint = Self::resolve(xs, client, service)?;
        let path = format!("{}/{}", Self::listen_path(service), conn);
        xs.write(client, None, &path, client.0.to_string().as_bytes())?;
        Ok(endpoint)
    }

    /// The server accepts all pending connection requests: for each entry in
    /// its listen queue it establishes a vchan, publishes the connection
    /// metadata under `/local/domain/<server>/vchan/<conn>`, records the
    /// flow, and removes the listen entry.
    pub fn accept(
        &mut self,
        xs: &mut XenStore,
        grants: &mut GrantTable,
        evtchn: &mut EventChannelTable,
        name: &str,
        server: DomId,
    ) -> Result<Vec<AcceptedConnection>, ConduitError> {
        // Consume any pending watch events (their content only tells us to look).
        let _ = xs.take_watch_events(server);
        let listen = Self::listen_path(name);
        let pending = xs.directory(server, None, &listen)?;
        let mut accepted = Vec::new();
        for conn in pending {
            if let Some(c) = self.accept_entry(xs, grants, evtchn, name, server, &conn)? {
                accepted.push(c);
            }
        }
        Ok(accepted)
    }

    /// Accept exactly one named pending connection request, leaving any
    /// other queued requests untouched. This is the Synjitsu-handoff
    /// rendezvous shape: the server knows precisely which connection it is
    /// waiting for (the booting unikernel's), and must not consume requests
    /// that belong to other handoffs in flight.
    pub fn accept_one(
        &mut self,
        xs: &mut XenStore,
        grants: &mut GrantTable,
        evtchn: &mut EventChannelTable,
        name: &str,
        server: DomId,
        conn: &str,
    ) -> Result<AcceptedConnection, ConduitError> {
        let _ = xs.take_watch_events(server);
        self.accept_entry(xs, grants, evtchn, name, server, conn)?
            .ok_or_else(|| ConduitError::UnknownService(format!("{name}/{conn}")))
    }

    /// Establish one listen entry: vchan, published metadata, flow record.
    /// Returns `None` when the entry is malformed (it is dropped).
    fn accept_entry(
        &mut self,
        xs: &mut XenStore,
        grants: &mut GrantTable,
        evtchn: &mut EventChannelTable,
        name: &str,
        server: DomId,
        conn: &str,
    ) -> Result<Option<AcceptedConnection>, ConduitError> {
        let listen = Self::listen_path(name);
        let entry = format!("{listen}/{conn}");
        let client_str = xs.read_string(server, None, &entry)?;
        let Ok(client_id) = client_str.trim().parse::<u32>() else {
            // Malformed request: drop it.
            // jitsu-lint: allow(R001, "best-effort cleanup of a malformed entry; rm of a just-read path only races another cleaner")
            let _ = xs.rm(server, None, &entry);
            return Ok(None);
        };
        let client = DomId(client_id);
        let channel = VchanPair::establish(grants, evtchn, server, client)
            .map_err(|e| ConduitError::Vchan(format!("{e:?}")))?;

        // Publish the shared-memory endpoint details where only the two
        // participants (and dom0) can read them.
        let vchan_base = Self::vchan_path(server, conn);
        xs.write(
            DomId::DOM0,
            None,
            &format!("{vchan_base}/ring-ref"),
            channel.server_ring_gref.0.to_string().as_bytes(),
        )?;
        xs.write(
            DomId::DOM0,
            None,
            &format!("{vchan_base}/event-channel"),
            channel.client_port.0.to_string().as_bytes(),
        )?;
        xs.write(
            DomId::DOM0,
            None,
            &format!("{vchan_base}/domid"),
            client.0.to_string().as_bytes(),
        )?;
        // The endpoint details are readable only by the two participants
        // (and dom0); every key must carry the grant, not just the
        // directory, since permissions are per node.
        let participant_perms = Permissions::owned_by(server).granting(client, PermLevel::Read);
        for key in ["", "/ring-ref", "/event-channel", "/domid"] {
            xs.set_perms(
                DomId::DOM0,
                None,
                &format!("{vchan_base}{key}"),
                participant_perms.clone(),
            )?;
        }

        let flow_id = self.flows.create(
            xs,
            DomId::DOM0,
            FlowState::Established,
            &format!("service {name} client dom{} conn {conn}", client.0),
        )?;
        xs.write(
            DomId::DOM0,
            None,
            &format!("{}/{}", Self::established_path(name), conn),
            flow_id.to_string().as_bytes(),
        )?;
        xs.rm(server, None, &entry)?;
        Ok(Some(AcceptedConnection {
            conn: conn.to_string(),
            client,
            flow_id,
            channel,
        }))
    }

    /// Tear down an accepted connection's metadata and mark its flow closed.
    pub fn close(
        xs: &mut XenStore,
        name: &str,
        server: DomId,
        conn: &str,
        flow_id: u64,
    ) -> Result<(), ConduitError> {
        // jitsu-lint: allow(R001, "teardown is best-effort: the paths may already be gone if the peer cleaned up first")
        let _ = xs.rm(DomId::DOM0, None, &Self::vchan_path(server, conn));
        // jitsu-lint: allow(R001, "teardown is best-effort: the paths may already be gone if the peer cleaned up first")
        let _ = xs.rm(
            DomId::DOM0,
            None,
            &format!("{}/{}", Self::established_path(name), conn),
        );
        FlowTable::set_state(xs, DomId::DOM0, flow_id, FlowState::Closed)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vchan::Side;
    use xenstore::EngineKind;

    struct Env {
        xs: XenStore,
        grants: GrantTable,
        evtchn: EventChannelTable,
        registry: ConduitRegistry,
    }

    fn env() -> Env {
        Env {
            xs: XenStore::new(EngineKind::JitsuMerge),
            grants: GrantTable::new(),
            evtchn: EventChannelTable::new(),
            registry: ConduitRegistry::new(),
        }
    }

    const SERVER: DomId = DomId(3);
    const CLIENT: DomId = DomId(7);

    #[test]
    fn register_resolve_and_list() {
        let mut e = env();
        let ep = e
            .registry
            .register(&mut e.xs, "http_server", SERVER)
            .unwrap();
        assert_eq!(ep.dom, SERVER);
        let resolved = ConduitRegistry::resolve(&mut e.xs, CLIENT, "http_server").unwrap();
        assert_eq!(resolved, ep);
        assert_eq!(
            ConduitRegistry::resolve(&mut e.xs, CLIENT, "missing"),
            Err(ConduitError::UnknownService("missing".into()))
        );
        e.registry.register(&mut e.xs, "jitsud", DomId(2)).unwrap();
        let mut services = ConduitRegistry::services(&mut e.xs);
        services.sort();
        assert_eq!(services, vec!["http_server", "jitsud"]);
    }

    #[test]
    fn full_connect_accept_flow_matches_figure5() {
        let mut e = env();
        e.registry
            .register(&mut e.xs, "http_server", SERVER)
            .unwrap();

        // Client writes into the listen queue (as the client domain).
        ConduitRegistry::connect(&mut e.xs, CLIENT, "http_server", "conn1").unwrap();
        // The server got a watch event.
        assert!(e.xs.pending_watch_events(SERVER) > 0);

        let mut accepted = e
            .registry
            .accept(
                &mut e.xs,
                &mut e.grants,
                &mut e.evtchn,
                "http_server",
                SERVER,
            )
            .unwrap();
        assert_eq!(accepted.len(), 1);
        let conn = &mut accepted[0];
        assert_eq!(conn.client, CLIENT);
        assert_eq!(conn.conn, "conn1");

        // Metadata appears where Figure 5 says it should.
        let ring_ref =
            e.xs.read_string(SERVER, None, "/local/domain/3/vchan/conn1/ring-ref")
                .unwrap();
        assert_eq!(ring_ref, conn.channel.server_ring_gref.0.to_string());
        assert_eq!(
            e.xs.read_string(SERVER, None, "/local/domain/3/vchan/conn1/domid")
                .unwrap(),
            "7"
        );
        assert!(e
            .xs
            .exists(DomId::DOM0, None, "/conduit/http_server/established/conn1")
            .unwrap());
        // The listen entry has been consumed.
        assert!(!e
            .xs
            .exists(SERVER, None, "/conduit/http_server/listen/conn1")
            .unwrap());
        // The flow is recorded as established.
        assert_eq!(
            FlowTable::state(&mut e.xs, DomId::DOM0, conn.flow_id).unwrap(),
            Some(FlowState::Established)
        );

        // And bytes flow over the channel.
        conn.channel
            .write(Side::Client, b"GET /queue HTTP/1.1\r\n\r\n", &mut e.evtchn)
            .unwrap();
        assert_eq!(
            conn.channel.read(Side::Server, 64).unwrap(),
            b"GET /queue HTTP/1.1\r\n\r\n"
        );
    }

    #[test]
    fn third_parties_cannot_observe_listen_entries() {
        let mut e = env();
        e.registry
            .register(&mut e.xs, "http_server", SERVER)
            .unwrap();
        ConduitRegistry::connect(&mut e.xs, CLIENT, "http_server", "conn1").unwrap();
        // Another guest cannot read the client's connection request...
        assert!(e
            .xs
            .read(DomId(9), None, "/conduit/http_server/listen/conn1")
            .is_err());
        // ...but the server can.
        assert!(e
            .xs
            .read(SERVER, None, "/conduit/http_server/listen/conn1")
            .is_ok());
    }

    #[test]
    fn vchan_metadata_is_private_to_participants() {
        let mut e = env();
        e.registry
            .register(&mut e.xs, "http_server", SERVER)
            .unwrap();
        ConduitRegistry::connect(&mut e.xs, CLIENT, "http_server", "conn1").unwrap();
        e.registry
            .accept(
                &mut e.xs,
                &mut e.grants,
                &mut e.evtchn,
                "http_server",
                SERVER,
            )
            .unwrap();
        assert!(e
            .xs
            .read(CLIENT, None, "/local/domain/3/vchan/conn1/ring-ref")
            .is_ok());
        assert!(e
            .xs
            .read(DomId(9), None, "/local/domain/3/vchan/conn1/ring-ref")
            .is_err());
    }

    #[test]
    fn multiple_clients_accepted_in_one_pass() {
        let mut e = env();
        e.registry
            .register(&mut e.xs, "http_server", SERVER)
            .unwrap();
        ConduitRegistry::connect(&mut e.xs, DomId(7), "http_server", "conn1").unwrap();
        ConduitRegistry::connect(&mut e.xs, DomId(9), "http_server", "conn2").unwrap();
        let accepted = e
            .registry
            .accept(
                &mut e.xs,
                &mut e.grants,
                &mut e.evtchn,
                "http_server",
                SERVER,
            )
            .unwrap();
        assert_eq!(accepted.len(), 2);
        let clients: Vec<u32> = accepted.iter().map(|a| a.client.0).collect();
        assert!(clients.contains(&7) && clients.contains(&9));
        // Accepting again with an empty queue yields nothing.
        let empty = e
            .registry
            .accept(
                &mut e.xs,
                &mut e.grants,
                &mut e.evtchn,
                "http_server",
                SERVER,
            )
            .unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn accept_one_takes_only_the_named_request() {
        let mut e = env();
        e.registry.register(&mut e.xs, "synjitsu", SERVER).unwrap();
        ConduitRegistry::connect(&mut e.xs, DomId(7), "synjitsu", "alice").unwrap();
        ConduitRegistry::connect(&mut e.xs, DomId(9), "synjitsu", "bob").unwrap();
        let got = e
            .registry
            .accept_one(
                &mut e.xs,
                &mut e.grants,
                &mut e.evtchn,
                "synjitsu",
                SERVER,
                "alice",
            )
            .unwrap();
        assert_eq!(got.conn, "alice");
        assert_eq!(got.client, DomId(7));
        // Bob's request is still queued, untouched.
        assert!(e
            .xs
            .exists(SERVER, None, "/conduit/synjitsu/listen/bob")
            .unwrap());
        assert!(!e
            .xs
            .exists(SERVER, None, "/conduit/synjitsu/listen/alice")
            .unwrap());
        // Accepting a connection that was never requested is an error.
        assert!(e
            .registry
            .accept_one(
                &mut e.xs,
                &mut e.grants,
                &mut e.evtchn,
                "synjitsu",
                SERVER,
                "carol",
            )
            .is_err());
    }

    #[test]
    fn close_marks_flow_closed_and_removes_metadata() {
        let mut e = env();
        e.registry
            .register(&mut e.xs, "http_server", SERVER)
            .unwrap();
        ConduitRegistry::connect(&mut e.xs, CLIENT, "http_server", "conn1").unwrap();
        let accepted = e
            .registry
            .accept(
                &mut e.xs,
                &mut e.grants,
                &mut e.evtchn,
                "http_server",
                SERVER,
            )
            .unwrap();
        let flow_id = accepted[0].flow_id;
        ConduitRegistry::close(&mut e.xs, "http_server", SERVER, "conn1", flow_id).unwrap();
        assert!(!e
            .xs
            .exists(DomId::DOM0, None, "/local/domain/3/vchan/conn1")
            .unwrap());
        assert_eq!(
            FlowTable::state(&mut e.xs, DomId::DOM0, flow_id).unwrap(),
            Some(FlowState::Closed)
        );
    }

    #[test]
    fn connect_to_unregistered_service_fails() {
        let mut e = env();
        assert!(matches!(
            ConduitRegistry::connect(&mut e.xs, CLIENT, "nothing_here", "conn1"),
            Err(ConduitError::UnknownService(_))
        ));
    }
}
