//! The `/conduit/flows` metadata table.
//!
//! Figure 5 shows a `flows` subtree holding one entry per conduit connection
//! with its lifecycle state and free-form metadata, readable by management
//! tools. Flow entries are written by the server side as connections are
//! accepted and updated as they progress.

use xenstore::{DomId, Result as XsResult, XenStore};

/// Lifecycle states of a flow, as stored in the flows table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowState {
    /// The client has enqueued a connection request.
    Connecting,
    /// The shared-memory endpoints are established.
    Established,
    /// The flow has been torn down.
    Closed,
}

impl FlowState {
    /// Token used in the store value.
    pub fn token(self) -> &'static str {
        match self {
            FlowState::Connecting => "connecting",
            FlowState::Established => "established",
            FlowState::Closed => "closed",
        }
    }

    /// Parse a token.
    pub fn from_token(s: &str) -> Option<FlowState> {
        Some(match s {
            "connecting" => FlowState::Connecting,
            "established" => FlowState::Established,
            "closed" => FlowState::Closed,
            _ => return None,
        })
    }
}

/// Manager of the `/conduit/flows` subtree.
#[derive(Debug, Default)]
pub struct FlowTable {
    next_id: u64,
}

impl FlowTable {
    /// The root path of the table.
    pub const ROOT: &'static str = "/conduit/flows";

    /// Create a manager (ids restart at 1 per host lifetime, as in the
    /// paper's example tree).
    pub fn new() -> FlowTable {
        FlowTable { next_id: 1 }
    }

    fn path(id: u64) -> String {
        format!("{}/{}", Self::ROOT, id)
    }

    /// Allocate a flow id and record it in the given state with free-form
    /// metadata (an s-expression string in the paper's example).
    pub fn create(
        &mut self,
        xs: &mut XenStore,
        actor: DomId,
        state: FlowState,
        metadata: &str,
    ) -> XsResult<u64> {
        let id = self.next_id;
        self.next_id += 1;
        let value = format!("({} ({metadata}))", state.token());
        xs.write(actor, None, &Self::path(id), value.as_bytes())?;
        Ok(id)
    }

    /// Update the state of a flow, preserving its metadata.
    pub fn set_state(xs: &mut XenStore, actor: DomId, id: u64, state: FlowState) -> XsResult<()> {
        let current = xs.read_string(actor, None, &Self::path(id))?;
        let metadata = current
            .split_once(' ')
            .map(|(_, rest)| rest.trim_end_matches(')').to_string())
            .unwrap_or_default();
        let value = format!("({} {metadata})", state.token());
        xs.write(actor, None, &Self::path(id), value.as_bytes())
    }

    /// Read the state of a flow.
    pub fn state(xs: &mut XenStore, actor: DomId, id: u64) -> XsResult<Option<FlowState>> {
        let value = xs.read_string(actor, None, &Self::path(id))?;
        let token = value
            .trim_start_matches('(')
            .split_whitespace()
            .next()
            .unwrap_or_default()
            .to_string();
        Ok(FlowState::from_token(&token))
    }

    /// List all flow ids currently recorded.
    pub fn list(xs: &mut XenStore, actor: DomId) -> Vec<u64> {
        xs.directory(actor, None, Self::ROOT)
            .unwrap_or_default()
            .into_iter()
            .filter_map(|s| s.parse().ok())
            .collect()
    }

    /// Remove a flow entry.
    pub fn remove(xs: &mut XenStore, actor: DomId, id: u64) -> XsResult<()> {
        xs.rm(actor, None, &Self::path(id))
    }

    /// Remove every flow entry already in [`FlowState::Closed`], returning
    /// how many were pruned. Short-lived flows (one per Synjitsu handoff
    /// rendezvous) would otherwise accumulate in the store for the lifetime
    /// of the host; management tools only care about live flows.
    pub fn prune_closed(xs: &mut XenStore, actor: DomId) -> usize {
        let mut pruned = 0;
        for id in Self::list(xs, actor) {
            if let Ok(Some(FlowState::Closed)) = Self::state(xs, actor, id) {
                if Self::remove(xs, actor, id).is_ok() {
                    pruned += 1;
                }
            }
        }
        pruned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xenstore::EngineKind;

    #[test]
    fn tokens_round_trip() {
        for s in [
            FlowState::Connecting,
            FlowState::Established,
            FlowState::Closed,
        ] {
            assert_eq!(FlowState::from_token(s.token()), Some(s));
        }
        assert_eq!(FlowState::from_token("nope"), None);
    }

    #[test]
    fn create_update_list_remove() {
        let mut xs = XenStore::new(EngineKind::JitsuMerge);
        let mut flows = FlowTable::new();
        let id1 = flows
            .create(
                &mut xs,
                DomId::DOM0,
                FlowState::Connecting,
                "client http_client domid 7",
            )
            .unwrap();
        let id2 = flows
            .create(
                &mut xs,
                DomId::DOM0,
                FlowState::Established,
                "client http_client domid 9",
            )
            .unwrap();
        assert_eq!(id1, 1);
        assert_eq!(id2, 2);
        assert_eq!(FlowTable::list(&mut xs, DomId::DOM0), vec![1, 2]);
        assert_eq!(
            FlowTable::state(&mut xs, DomId::DOM0, id1).unwrap(),
            Some(FlowState::Connecting)
        );
        FlowTable::set_state(&mut xs, DomId::DOM0, id1, FlowState::Established).unwrap();
        assert_eq!(
            FlowTable::state(&mut xs, DomId::DOM0, id1).unwrap(),
            Some(FlowState::Established)
        );
        // Metadata survives state changes.
        let raw = xs
            .read_string(DomId::DOM0, None, "/conduit/flows/1")
            .unwrap();
        assert!(raw.contains("domid 7"), "raw={raw}");
        FlowTable::remove(&mut xs, DomId::DOM0, id1).unwrap();
        assert_eq!(FlowTable::list(&mut xs, DomId::DOM0), vec![2]);
    }

    #[test]
    fn prune_removes_only_closed_flows() {
        let mut xs = XenStore::new(EngineKind::JitsuMerge);
        let mut flows = FlowTable::new();
        let live = flows
            .create(&mut xs, DomId::DOM0, FlowState::Established, "live")
            .unwrap();
        for _ in 0..5 {
            let id = flows
                .create(&mut xs, DomId::DOM0, FlowState::Established, "short")
                .unwrap();
            FlowTable::set_state(&mut xs, DomId::DOM0, id, FlowState::Closed).unwrap();
        }
        assert_eq!(FlowTable::prune_closed(&mut xs, DomId::DOM0), 5);
        assert_eq!(FlowTable::list(&mut xs, DomId::DOM0), vec![live]);
        // Idempotent: nothing left to prune.
        assert_eq!(FlowTable::prune_closed(&mut xs, DomId::DOM0), 0);
    }

    #[test]
    fn missing_flow_is_an_error() {
        let mut xs = XenStore::new(EngineKind::JitsuMerge);
        assert!(FlowTable::state(&mut xs, DomId::DOM0, 42).is_err());
        assert!(FlowTable::remove(&mut xs, DomId::DOM0, 42).is_err());
    }
}
