//! # conduit — shared-memory channels with XenStore rendezvous
//!
//! §3.2 of the paper introduces *Conduit*, a Plan 9-like layer that lets
//! unikernels (and legacy VMs) discover each other by name and then exchange
//! bytes over zero-copy shared memory, without touching the network bridge:
//!
//! 1. [`vchan`] — the point-to-point transport: a pair of byte rings in
//!    grant-shared pages, signalled by event channels (compatible in spirit
//!    with the Xen `libvchan` the paper builds on);
//! 2. [`rendezvous`] — the naming layer: servers register
//!    `/conduit/<name>`, clients write a connection request into the
//!    server's create-restricted `listen` directory, and both sides learn
//!    the grant/event-channel references from `/local/domain/<domid>/vchan`;
//! 3. [`flows`] — the `/conduit/flows` metadata tree management tools read.
//!
//! The Jitsu directory service is itself discovered through a well-known
//! `jitsud` conduit node, and Synjitsu hands TCP state to booting unikernels
//! through the same store (§3.3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flows;
pub mod rendezvous;
pub mod vchan;

pub use flows::{FlowState, FlowTable};
pub use rendezvous::{ConduitError, ConduitRegistry, Endpoint};
pub use vchan::{Vchan, VchanError, VchanPair};
