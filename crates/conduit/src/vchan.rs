//! vchan: a point-to-point byte stream over grant-shared rings.
//!
//! A vchan is "a point-to-point link that uses Xen grant tables to map
//! shared memory pages between two VMs, using Xen event channels to
//! synchronise access to these pages" (§3.2.1). Each direction is a
//! single-producer single-consumer byte ring living in one granted page;
//! writing data sets the peer's event channel pending so it knows to poll
//! the ring. Establishing a vchan needs only the two domain ids — no
//! XenStore — which is why it works early in boot and inside disaggregated
//! systems; the higher-level rendezvous is layered on top by
//! [`crate::rendezvous`].

use netstack::FrameBuf;
use xen_sim::event_channel::{EventChannelTable, Port};
use xen_sim::grant_table::{GrantRef, GrantTable};
use xen_sim::memory::PAGE_SIZE;
use xenstore::DomId;

/// Errors from vchan operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VchanError {
    /// The ring is full; the caller should wait for the peer to drain it.
    WouldBlock,
    /// The peer has closed its end.
    Closed,
    /// A grant or event-channel operation failed during setup.
    Setup(String),
}

/// Ring sizes: one page per direction, minus a small header area.
const RING_CAPACITY: usize = PAGE_SIZE - 16;

/// One direction of the channel: a byte ring with read/write cursors.
#[derive(Debug, Clone)]
struct Ring {
    buf: Vec<u8>,
    read: usize,
    write: usize,
    len: usize,
}

impl Ring {
    fn new() -> Ring {
        Ring {
            buf: vec![0u8; RING_CAPACITY],
            read: 0,
            write: 0,
            len: 0,
        }
    }

    fn free(&self) -> usize {
        RING_CAPACITY - self.len
    }

    fn push(&mut self, data: &[u8]) -> usize {
        let n = data.len().min(self.free());
        if n == 0 {
            return 0;
        }
        // At most two bulk moves: up to the end of the ring page, then the
        // wrapped remainder from its start.
        let first = n.min(RING_CAPACITY - self.write);
        self.buf[self.write..self.write + first].copy_from_slice(&data[..first]);
        if first < n {
            self.buf[..n - first].copy_from_slice(&data[first..n]);
        }
        self.write = (self.write + n) % RING_CAPACITY;
        self.len += n;
        n
    }

    /// Drain up to `max` bytes into a shared buffer. This is the one
    /// sanctioned copy on the frame hot path: bytes leave the granted ring
    /// page in at most two bulk moves (wraparound), landing in an
    /// allocation that every later layer — parser payloads, delivery
    /// queues, replay — only takes views of. Zero-byte drains return the
    /// allocation-free empty buffer.
    fn pop(&mut self, max: usize) -> FrameBuf {
        let n = max.min(self.len);
        if n == 0 {
            return FrameBuf::empty();
        }
        let mut out = Vec::with_capacity(n);
        let first = n.min(RING_CAPACITY - self.read);
        out.extend_from_slice(&self.buf[self.read..self.read + first]);
        if first < n {
            out.extend_from_slice(&self.buf[..n - first]);
        }
        self.read = (self.read + n) % RING_CAPACITY;
        self.len -= n;
        FrameBuf::from_vec(out)
    }
}

/// The shared state of an established vchan (both directions).
///
/// In the real system each ring lives in a granted page mapped by both
/// domains; here the [`VchanPair`] owns the rings and each [`Vchan`]
/// endpoint addresses them by direction, with the grant references and event
/// channel ports recorded so the setup path exercises the same hypervisor
/// interfaces.
#[derive(Debug)]
pub struct VchanPair {
    server: DomId,
    client: DomId,
    /// Ring carrying bytes from client to server.
    to_server: Ring,
    /// Ring carrying bytes from server to client.
    to_client: Ring,
    /// Grant of the server→client page (granted by the server).
    pub server_ring_gref: GrantRef,
    /// Grant of the client→server page (granted by the server).
    pub client_ring_gref: GrantRef,
    /// Server-side event channel port.
    pub server_port: Port,
    /// Client-side event channel port.
    pub client_port: Port,
    server_open: bool,
    client_open: bool,
    /// Cumulative payload bytes accepted into the client→server ring.
    bytes_to_server: u64,
    /// Cumulative payload bytes accepted into the server→client ring.
    bytes_to_client: u64,
}

/// Which end of the channel a [`Vchan`] handle represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// The listening/granting side.
    Server,
    /// The connecting side.
    Client,
}

impl VchanPair {
    /// Establish a vchan between `server` and `client`: the server grants
    /// the two ring pages to the client and allocates an unbound event
    /// channel which the client binds.
    pub fn establish(
        grants: &mut GrantTable,
        evtchn: &mut EventChannelTable,
        server: DomId,
        client: DomId,
    ) -> Result<VchanPair, VchanError> {
        let server_ring_gref = grants
            .grant(server, client, false)
            .map_err(|e| VchanError::Setup(format!("grant failed: {e:?}")))?;
        let client_ring_gref = grants
            .grant(server, client, false)
            .map_err(|e| VchanError::Setup(format!("grant failed: {e:?}")))?;
        grants
            .map(server, server_ring_gref, client)
            .map_err(|e| VchanError::Setup(format!("map failed: {e:?}")))?;
        grants
            .map(server, client_ring_gref, client)
            .map_err(|e| VchanError::Setup(format!("map failed: {e:?}")))?;
        let server_port = evtchn.alloc_unbound(server, client);
        let client_port = evtchn
            .bind_interdomain(client, server, server_port)
            .map_err(|e| VchanError::Setup(format!("event channel bind failed: {e:?}")))?;
        Ok(VchanPair {
            server,
            client,
            to_server: Ring::new(),
            to_client: Ring::new(),
            server_ring_gref,
            client_ring_gref,
            server_port,
            client_port,
            server_open: true,
            client_open: true,
            bytes_to_server: 0,
            bytes_to_client: 0,
        })
    }

    /// The server-side endpoint handle.
    pub fn server_end(&self) -> Vchan {
        Vchan {
            side: Side::Server,
            dom: self.server,
        }
    }

    /// The client-side endpoint handle.
    pub fn client_end(&self) -> Vchan {
        Vchan {
            side: Side::Client,
            dom: self.client,
        }
    }

    fn rings(&mut self, side: Side) -> (&mut Ring, &mut Ring, bool) {
        // Returns (tx ring, rx ring, peer_open) for the given side.
        match side {
            Side::Server => (&mut self.to_client, &mut self.to_server, self.client_open),
            Side::Client => (&mut self.to_server, &mut self.to_client, self.server_open),
        }
    }

    /// Write bytes from `side`; returns how many were accepted. Notifies the
    /// peer's event channel when data was written.
    pub fn write(
        &mut self,
        side: Side,
        data: &[u8],
        evtchn: &mut EventChannelTable,
    ) -> Result<usize, VchanError> {
        let notify_from = match side {
            Side::Server => (self.server, self.server_port),
            Side::Client => (self.client, self.client_port),
        };
        let own_open = match side {
            Side::Server => self.server_open,
            Side::Client => self.client_open,
        };
        let (tx, _rx, peer_open) = self.rings(side);
        if !own_open || !peer_open {
            return Err(VchanError::Closed);
        }
        if data.is_empty() {
            // Nothing to transfer: not a blocking condition, even when the
            // ring happens to be exactly full.
            return Ok(0);
        }
        if tx.free() == 0 {
            return Err(VchanError::WouldBlock);
        }
        let n = tx.push(data);
        if n > 0 {
            match side {
                Side::Server => self.bytes_to_client += n as u64,
                Side::Client => self.bytes_to_server += n as u64,
            }
            // jitsu-lint: allow(R001, "notify can only fail if the peer closed its port; the bytes are already in the ring")
            let _ = evtchn.notify(notify_from.0, notify_from.1);
        }
        Ok(n)
    }

    /// Drive a whole buffer through the channel from `from`, reading at the
    /// peer whenever the ring fills, and return everything the peer read.
    /// A single-threaded convenience for co-operative bulk transfers — the
    /// Synjitsu → unikernel TCB drain pushes records much larger than one
    /// ring through exactly this loop.
    pub fn stream(
        &mut self,
        from: Side,
        data: &[u8],
        evtchn: &mut EventChannelTable,
    ) -> Result<FrameBuf, VchanError> {
        let to = match from {
            Side::Server => Side::Client,
            Side::Client => Side::Server,
        };
        let mut received: Vec<FrameBuf> = Vec::new();
        let mut offset = 0;
        while offset < data.len() {
            match self.write(from, &data[offset..], evtchn) {
                Ok(n) if n > 0 => offset += n,
                Ok(_) | Err(VchanError::WouldBlock) => {
                    let got = self.read(to, usize::MAX)?;
                    if got.is_empty() {
                        // Full ring and nothing drained: cannot progress.
                        return Err(VchanError::WouldBlock);
                    }
                    received.push(got);
                }
                Err(e) => return Err(e),
            }
        }
        let tail = self.read(to, usize::MAX)?;
        if !tail.is_empty() {
            received.push(tail);
        }
        // A transfer that fit in one ring drain comes back as an O(1) view
        // of that single drained buffer.
        Ok(FrameBuf::concat(&received))
    }

    /// Read up to `max` bytes available to `side` as a shared buffer — a
    /// view of the region drained from the ring. Zero-byte reads (an empty
    /// ring with the peer still open, or `max == 0`) never allocate.
    pub fn read(&mut self, side: Side, max: usize) -> Result<FrameBuf, VchanError> {
        let (_tx, rx, peer_open) = self.rings(side);
        if rx.len == 0 {
            return if peer_open {
                Ok(FrameBuf::empty())
            } else {
                Err(VchanError::Closed)
            };
        }
        Ok(rx.pop(max))
    }

    /// Bytes currently readable by `side`.
    pub fn readable(&self, side: Side) -> usize {
        match side {
            Side::Server => self.to_server.len,
            Side::Client => self.to_client.len,
        }
    }

    /// Cumulative payload bytes ever accepted into the client→server ring.
    ///
    /// A virtual (wall-clock-free) throughput counter: the `bench_snapshot`
    /// harness asserts it exactly against the driven workload, so any change
    /// to ring accounting shows up as metric drift rather than noise.
    pub fn bytes_to_server(&self) -> u64 {
        self.bytes_to_server
    }

    /// Cumulative payload bytes ever accepted into the server→client ring.
    pub fn bytes_to_client(&self) -> u64 {
        self.bytes_to_client
    }

    /// Cumulative payload bytes accepted in both directions.
    pub fn bytes_transferred(&self) -> u64 {
        self.bytes_to_server + self.bytes_to_client
    }

    /// Close one side of the channel.
    pub fn close(&mut self, side: Side) {
        match side {
            Side::Server => self.server_open = false,
            Side::Client => self.client_open = false,
        }
    }

    /// True while both ends are open.
    pub fn is_open(&self) -> bool {
        self.server_open && self.client_open
    }

    /// Release the hypervisor resources behind the channel: unmap and
    /// revoke both ring grants, and close both event-channel ports. Without
    /// this, every short-lived vchan (one per Synjitsu handoff) permanently
    /// leaks two grant entries from the server's table until it fills.
    pub fn teardown(&mut self, grants: &mut GrantTable, evtchn: &mut EventChannelTable) {
        self.server_open = false;
        self.client_open = false;
        for gref in [self.server_ring_gref, self.client_ring_gref] {
            let _ = grants.unmap(self.server, gref);
            let _ = grants.revoke(self.server, gref);
        }
        let _ = evtchn.close(self.server, self.server_port);
        let _ = evtchn.close(self.client, self.client_port);
    }

    /// The ring capacity per direction.
    pub fn capacity() -> usize {
        RING_CAPACITY
    }
}

/// A lightweight endpoint handle (which side of which channel).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Vchan {
    /// Which side this handle is.
    pub side: Side,
    /// The domain holding this end.
    pub dom: DomId,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (GrantTable, EventChannelTable, VchanPair) {
        let mut grants = GrantTable::new();
        let mut evtchn = EventChannelTable::new();
        let pair = VchanPair::establish(&mut grants, &mut evtchn, DomId(3), DomId(7)).unwrap();
        (grants, evtchn, pair)
    }

    #[test]
    fn establish_allocates_grants_and_ports() {
        let (grants, _evtchn, pair) = setup();
        assert_ne!(pair.server_ring_gref, pair.client_ring_gref);
        assert_eq!(grants.grants_of(DomId(3)), 2, "server granted both rings");
        assert!(pair.is_open());
        assert_eq!(pair.server_end().dom, DomId(3));
        assert_eq!(pair.client_end().dom, DomId(7));
    }

    #[test]
    fn bytes_flow_both_ways_with_notification() {
        let (_grants, mut evtchn, mut pair) = setup();
        let n = pair
            .write(Side::Client, b"hello server", &mut evtchn)
            .unwrap();
        assert_eq!(n, 12);
        // The server's event channel is pending.
        assert!(evtchn.take_pending(DomId(3), pair.server_port).is_ok());
        assert_eq!(pair.readable(Side::Server), 12);
        assert_eq!(pair.read(Side::Server, 64).unwrap(), b"hello server");
        assert_eq!(pair.readable(Side::Server), 0);

        pair.write(Side::Server, b"hello client", &mut evtchn)
            .unwrap();
        assert_eq!(pair.read(Side::Client, 5).unwrap(), b"hello");
        assert_eq!(pair.read(Side::Client, 64).unwrap(), b" client");
        assert_eq!(pair.read(Side::Client, 64).unwrap(), b"");
    }

    #[test]
    fn ring_wraps_correctly_over_many_messages() {
        let (_grants, mut evtchn, mut pair) = setup();
        // Push far more data than one ring holds, in chunks, draining as we go.
        let chunk = vec![0xAB; 1000];
        let mut total_read = 0usize;
        for _ in 0..20 {
            let n = pair.write(Side::Client, &chunk, &mut evtchn).unwrap();
            assert!(n > 0);
            let got = pair.read(Side::Server, 4096).unwrap();
            assert!(got.iter().all(|&b| b == 0xAB));
            total_read += got.len();
        }
        total_read += pair.read(Side::Server, usize::MAX).unwrap().len();
        assert_eq!(total_read, 20 * 1000);
    }

    #[test]
    fn byte_counters_account_for_every_accepted_byte() {
        let (_grants, mut evtchn, mut pair) = setup();
        assert_eq!(pair.bytes_transferred(), 0);
        pair.write(Side::Client, b"hello", &mut evtchn).unwrap();
        pair.write(Side::Server, b"hi", &mut evtchn).unwrap();
        assert_eq!(pair.bytes_to_server(), 5);
        assert_eq!(pair.bytes_to_client(), 2);
        assert_eq!(pair.bytes_transferred(), 7);
        pair.read(Side::Server, usize::MAX).unwrap();
        pair.read(Side::Client, usize::MAX).unwrap();
        // Counters are cumulative: draining the rings does not reset them,
        // and a multi-ring stream counts every byte exactly once.
        let payload = vec![0x5A; 3 * VchanPair::capacity() + 17];
        let echoed = pair.stream(Side::Client, &payload, &mut evtchn).unwrap();
        assert_eq!(echoed.len(), payload.len());
        assert_eq!(pair.bytes_to_server(), 5 + payload.len() as u64);
        assert_eq!(pair.bytes_to_client(), 2);
    }

    #[test]
    fn full_ring_blocks_then_drains() {
        let (_grants, mut evtchn, mut pair) = setup();
        let big = vec![1u8; VchanPair::capacity() + 500];
        let accepted = pair.write(Side::Client, &big, &mut evtchn).unwrap();
        assert_eq!(accepted, VchanPair::capacity());
        assert_eq!(
            pair.write(Side::Client, b"more", &mut evtchn),
            Err(VchanError::WouldBlock)
        );
        // Drain some and retry.
        let drained = pair.read(Side::Server, 100).unwrap();
        assert_eq!(drained.len(), 100);
        assert_eq!(pair.write(Side::Client, b"more", &mut evtchn).unwrap(), 4);
    }

    #[test]
    fn close_propagates_to_peer() {
        let (_grants, mut evtchn, mut pair) = setup();
        pair.write(Side::Server, b"bye", &mut evtchn).unwrap();
        pair.close(Side::Server);
        assert!(!pair.is_open());
        // The client can still read buffered data...
        assert_eq!(pair.read(Side::Client, 16).unwrap(), b"bye");
        // ...then sees Closed.
        assert_eq!(pair.read(Side::Client, 16), Err(VchanError::Closed));
        // And cannot write to a closed peer.
        assert_eq!(
            pair.write(Side::Client, b"x", &mut evtchn),
            Err(VchanError::Closed)
        );
    }

    #[test]
    fn zero_byte_reads_do_not_allocate() {
        let (_grants, mut evtchn, mut pair) = setup();
        // An idle ring with the peer open: empty result, no allocation.
        let empty = pair.read(Side::Server, usize::MAX).unwrap();
        assert!(empty.is_empty());
        assert!(
            !empty.has_allocation(),
            "an empty-ring read must return the allocation-free empty buffer"
        );
        // `max == 0` with data buffered is also allocation-free.
        pair.write(Side::Client, b"data", &mut evtchn).unwrap();
        let zero = pair.read(Side::Server, 0).unwrap();
        assert!(zero.is_empty());
        assert!(!zero.has_allocation());
        // The buffered bytes are still there afterwards.
        assert_eq!(pair.read(Side::Server, usize::MAX).unwrap(), b"data");
    }

    #[test]
    fn zero_length_write_does_not_notify() {
        let (_grants, mut evtchn, mut pair) = setup();
        pair.write(Side::Client, b"", &mut evtchn).unwrap();
        assert!(!evtchn.take_pending(DomId(3), pair.server_port).unwrap());
    }

    #[test]
    fn write_of_exactly_ring_capacity_fills_the_ring_in_one_call() {
        let (_grants, mut evtchn, mut pair) = setup();
        let exact = vec![0x5A; VchanPair::capacity()];
        let accepted = pair.write(Side::Client, &exact, &mut evtchn).unwrap();
        assert_eq!(accepted, VchanPair::capacity());
        assert_eq!(pair.readable(Side::Server), VchanPair::capacity());
        // Exactly full: one more byte would block…
        assert_eq!(
            pair.write(Side::Client, b"x", &mut evtchn),
            Err(VchanError::WouldBlock)
        );
        // …but an empty write is not a blocking condition.
        assert_eq!(pair.write(Side::Client, b"", &mut evtchn), Ok(0));
        // The full ring drains intact (the read cursor wraps once).
        let drained = pair.read(Side::Server, usize::MAX).unwrap();
        assert_eq!(drained, exact);
        assert_eq!(pair.write(Side::Client, b"x", &mut evtchn), Ok(1));
    }

    #[test]
    fn write_after_closing_own_side_is_an_error() {
        let (_grants, mut evtchn, mut pair) = setup();
        pair.close(Side::Client);
        assert_eq!(
            pair.write(Side::Client, b"late", &mut evtchn),
            Err(VchanError::Closed)
        );
        // The server sees Closed once nothing is left to drain.
        assert_eq!(pair.read(Side::Server, 16), Err(VchanError::Closed));
    }

    #[test]
    fn reader_drains_a_full_ring_buffered_before_the_peer_closed() {
        let (_grants, mut evtchn, mut pair) = setup();
        let exact = vec![0x77; VchanPair::capacity()];
        assert_eq!(
            pair.write(Side::Server, &exact, &mut evtchn).unwrap(),
            VchanPair::capacity()
        );
        pair.close(Side::Server);
        // Every byte written before the close is still readable…
        let mut drained = Vec::new();
        drained.extend_from_slice(&pair.read(Side::Client, 1000).unwrap());
        drained.extend_from_slice(&pair.read(Side::Client, usize::MAX).unwrap());
        assert_eq!(drained, exact);
        // …and only then does the reader observe the close.
        assert_eq!(pair.read(Side::Client, 16), Err(VchanError::Closed));
    }

    #[test]
    fn stream_pushes_buffers_larger_than_the_ring() {
        let (_grants, mut evtchn, mut pair) = setup();
        let big: Vec<u8> = (0..VchanPair::capacity() * 3 + 123)
            .map(|i| (i % 251) as u8)
            .collect();
        let received = pair.stream(Side::Server, &big, &mut evtchn).unwrap();
        assert_eq!(received, big, "no loss or reordering across wraps");
        assert_eq!(pair.readable(Side::Client), 0);
    }

    #[test]
    fn teardown_releases_grants_and_ports() {
        let (mut grants, mut evtchn, mut pair) = setup();
        assert_eq!(grants.grants_of(DomId(3)), 2);
        pair.teardown(&mut grants, &mut evtchn);
        assert_eq!(grants.grants_of(DomId(3)), 0, "both ring grants revoked");
        assert!(!pair.is_open());
        assert_eq!(
            pair.write(Side::Client, b"x", &mut evtchn),
            Err(VchanError::Closed)
        );
        // Repeated short-lived channels must not exhaust the grant table.
        for _ in 0..1_000 {
            let mut p = VchanPair::establish(&mut grants, &mut evtchn, DomId(3), DomId(7)).unwrap();
            p.teardown(&mut grants, &mut evtchn);
        }
        assert_eq!(grants.grants_of(DomId(3)), 0);
    }

    #[test]
    fn stream_to_a_closed_peer_fails() {
        let (_grants, mut evtchn, mut pair) = setup();
        pair.close(Side::Client);
        assert_eq!(
            pair.stream(Side::Server, b"data", &mut evtchn),
            Err(VchanError::Closed)
        );
    }
}
