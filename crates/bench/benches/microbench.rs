//! Criterion micro-benchmarks for the hot paths behind the paper's
//! experiments: XenStore transaction commits per engine (Figure 3's inner
//! loop), domain construction (Figure 4), the vchan byte path (Conduit,
//! §3.2), the TCP handshake + TCB serialisation used by Synjitsu (§3.3.1),
//! and a full simulated cold start (Figure 9a's unit of work).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jitsu::config::{JitsuConfig, ServiceConfig};
use jitsu::jitsud::Jitsud;
use netstack::ipv4::Ipv4Addr;
use netstack::tcp::{Connection, Listener, Tcb};
use platform::BoardKind;
use xen_sim::domain::DomainConfig;
use xen_sim::event_channel::EventChannelTable;
use xen_sim::grant_table::GrantTable;
use xen_sim::toolstack::{BootOptimisations, Toolstack};
use xenstore::{DomId, EngineKind, XenStore};

fn bench_xenstore_transactions(c: &mut Criterion) {
    let mut group = c.benchmark_group("xenstore_txn_commit");
    group.sample_size(20);
    for engine in EngineKind::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(engine.label()),
            &engine,
            |b, &engine| {
                let mut xs = XenStore::new(engine);
                let mut i = 0u64;
                b.iter(|| {
                    i += 1;
                    let t = xs.transaction_start(DomId::DOM0).unwrap();
                    for op in 0..8 {
                        xs.write(
                            DomId::DOM0,
                            Some(t),
                            &format!("/local/domain/{}/op{}", i % 256, op),
                            b"v",
                        )
                        .unwrap();
                    }
                    xs.transaction_end(DomId::DOM0, t, true).unwrap();
                });
            },
        );
    }
    group.finish();
}

fn bench_domain_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("domain_construction");
    group.sample_size(20);
    for (label, opts) in [
        ("vanilla", BootOptimisations::vanilla()),
        ("jitsu", BootOptimisations::jitsu()),
    ] {
        group.bench_function(label, |b| {
            let mut ts = Toolstack::new(BoardKind::Cubieboard2.board(), EngineKind::JitsuMerge, 1);
            b.iter(|| {
                ts.measure_create(DomainConfig::unikernel("bench"), opts)
                    .unwrap();
            });
        });
    }
    group.finish();
}

fn bench_vchan_throughput(c: &mut Criterion) {
    use conduit::vchan::{Side, VchanPair};
    c.bench_function("vchan_write_read_1kib", |b| {
        let mut grants = GrantTable::new();
        let mut evtchn = EventChannelTable::new();
        let mut pair = VchanPair::establish(&mut grants, &mut evtchn, DomId(3), DomId(7)).unwrap();
        let data = vec![0xA5u8; 1024];
        b.iter(|| {
            pair.write(Side::Client, &data, &mut evtchn).unwrap();
            let got = pair.read(Side::Server, 1024).unwrap();
            assert_eq!(got.len(), 1024);
        });
    });
}

fn bench_tcp_handshake_and_handoff(c: &mut Criterion) {
    c.bench_function("tcp_handshake_plus_tcb_serialisation", |b| {
        let server_ip = Ipv4Addr::new(192, 168, 1, 20);
        let client_ip = Ipv4Addr::new(192, 168, 1, 100);
        b.iter(|| {
            let mut listener = Listener::new(server_ip, 80, 7);
            let (mut client, syn) = Connection::connect(client_ip, 51000, server_ip, 80, 1000);
            let (mut server, syn_ack) = listener.on_syn(client_ip, &syn).unwrap();
            let acks = client.on_segment(&syn_ack);
            server.on_segment(&acks[0]);
            let req = client.send(b"GET / HTTP/1.1\r\n\r\n");
            server.on_segment(&req);
            let sexp = server.tcb.to_sexp();
            let adopted = Tcb::from_sexp(&sexp).unwrap();
            assert_eq!(adopted.local_port, 80);
        });
    });
}

fn bench_cold_start(c: &mut Criterion) {
    let mut group = c.benchmark_group("jitsu_cold_start_simulation");
    group.sample_size(10);
    group.bench_function("optimised_synjitsu", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let config = JitsuConfig::new("family.name").with_service(ServiceConfig::http_site(
                "alice.family.name",
                Ipv4Addr::new(192, 168, 1, 20),
            ));
            let mut jitsud = Jitsud::new(config, BoardKind::Cubieboard2.board(), i);
            let report = jitsud
                .cold_start_request("alice.family.name", Ipv4Addr::new(192, 168, 1, 100), "/")
                .unwrap();
            assert_eq!(report.http_status, 200);
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_xenstore_transactions,
    bench_domain_construction,
    bench_vchan_throughput,
    bench_tcp_handshake_and_handoff,
    bench_cold_start
);
criterion_main!(benches);
