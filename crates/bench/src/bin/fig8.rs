//! Regenerates Figure 8: ICMP RTT vs payload size for the four datapath
//! targets.
fn main() {
    let figure = bench::fig8::figure(200, 0x51CA);
    println!("{}", figure.render());
    println!("CSV:\n{}", figure.to_csv());
}
