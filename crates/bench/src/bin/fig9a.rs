//! Regenerates Figure 9a: HTTP response-time CDFs for Jitsu cold starts.
fn main() {
    let figure = bench::fig9a::figure(40, 0x9A);
    println!("{}", figure.render());
    println!("CSV:\n{}", figure.to_csv());
}
