//! Regenerates Table 1: power usage, plus the battery-runtime estimate.
fn main() {
    println!("{}", bench::table1::table().render());
    println!(
        "Battery experiment (§4): a Cubieboard2 + Ethernet on a typical USB power bank runs ≈{:.1} hours (paper observed 9 hours).",
        bench::table1::battery_runtime_hours()
    );
}
