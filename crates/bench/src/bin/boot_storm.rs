//! Boot-storm experiment: concurrent summoning under open-loop Poisson
//! load (see `bench::boot_storm` and README § "The boot-storm experiment").
//!
//! Arguments: an optional hexadecimal seed (default `B007`), plus
//! `--boards N` and `--shards N`. With `--boards 1` (the default) this
//! prints the classic single-board sweep; with more boards it runs the
//! fleet on the sharded engine with `SERVFAIL` fail-over between boards.
//! The report is a pure function of (seed, boards) — the shard count is
//! echoed to stderr only, so the CI shard-invariance gate can diff stdout
//! byte-for-byte across shard counts.
fn main() {
    let (seed, boards, shards) = bench::fleet::parse_storm_args(0xB007);
    println!("seed = {seed:#x}\n");
    if boards > 1 {
        eprintln!("fleet: {boards} boards, {shards} shards");
        println!("boards = {boards}\n");
        println!(
            "{}",
            bench::boot_storm::fleet_table(seed, boards, shards).render()
        );
        println!("fo-sent counts SERVFAILs retried against the next board in the ring;");
        println!("fo-drop counts queries no board in the fleet could host.");
    } else {
        println!("{}", bench::boot_storm::table(seed).render());
        println!("launch-slot capacity on the Cubieboard2 is ~8 launches/s per slot;");
        println!("SERVFAIL appears only once the working set exceeds guest memory (832 MiB).");
    }
}
