//! Boot-storm experiment: concurrent summoning under open-loop Poisson
//! load (see `bench::boot_storm` and README § "The boot-storm experiment").
//!
//! Optional argument: a hexadecimal seed (default `B007`). The storm is a
//! pure function of the seed — two runs with the same seed print
//! byte-identical reports.
fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| u64::from_str_radix(s.trim_start_matches("0x"), 16).ok())
        .unwrap_or(0xB007);
    println!("seed = {seed:#x}\n");
    println!("{}", bench::boot_storm::table(seed).render());
    println!("launch-slot capacity on the Cubieboard2 is ~8 launches/s per slot;");
    println!("SERVFAIL appears only once the working set exceeds guest memory (832 MiB).");
}
