//! Runs every experiment in sequence — the one-shot reproduction of the
//! paper's evaluation section.
fn main() {
    println!("== Reproducing the evaluation of 'Jitsu: Just-In-Time Summoning of Unikernels' ==\n");
    println!(
        "{}",
        bench::fig3::figure(&bench::fig3::default_sweep()).render()
    );
    println!("{}", bench::fig4::figure(3).render());
    println!("{}", bench::fig8::figure(100, 0x51CA).render());
    println!("{}", bench::fig9a::figure(25, 0x9A).render());
    println!("{}", bench::fig9b::figure(100, 0x9B).render());
    println!("{}", bench::boot_storm::table(0xB007).render());
    println!("{}", bench::handoff_storm::table(0x4A0D).render());
    println!("{}", bench::xenstore_storm::merge_table(0x5707).render());
    println!("{}", bench::xenstore_storm::snapshot_table().render());
    println!("{}", bench::table1::table().render());
    println!("{}", bench::table2::summary_table().render());
    println!("{}", bench::throughput::table().render());
}
