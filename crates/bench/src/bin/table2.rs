//! Regenerates Table 2: the CVE classification and per-layer summary.
fn main() {
    println!("{}", bench::table2::table().render());
    println!("{}", bench::table2::summary_table().render());
    let disagreements = bench::table2::disagreements();
    if disagreements.is_empty() {
        println!("Derived Jitsu column matches the paper for all 32 CVEs.");
    } else {
        println!(
            "WARNING: {} disagreements with the paper's column",
            disagreements.len()
        );
    }
}
