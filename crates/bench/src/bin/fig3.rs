//! Regenerates Figure 3: parallel VM start/stop under the three XenStore
//! transaction engines.
fn main() {
    let sweep = bench::fig3::default_sweep();
    let figure = bench::fig3::figure(&sweep);
    println!("{}", figure.render());
    println!("CSV:\n{}", figure.to_csv());
}
