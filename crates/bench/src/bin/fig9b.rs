//! Regenerates Figure 9b: Docker container start-time CDFs.
fn main() {
    let figure = bench::fig9b::figure(150, 0x9B);
    println!("{}", figure.render());
    println!("CSV:\n{}", figure.to_csv());
}
