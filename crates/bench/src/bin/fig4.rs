//! Regenerates Figure 4: domain build time vs VM memory for each toolstack
//! optimisation step (plus the ARM→x86 switch).
fn main() {
    let figure = bench::fig4::figure(5);
    println!("{}", figure.render());
    println!("CSV:\n{}", figure.to_csv());
}
