//! Regenerates the §4 throughput results (HTTP persistent queue, iperf
//! parity).
fn main() {
    println!("{}", bench::throughput::table().render());
}
