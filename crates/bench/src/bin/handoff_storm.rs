//! Handoff-storm experiment: live TCP flows migrated from Synjitsu to
//! booted unikernels mid-request (see `bench::handoff_storm` and README
//! § "The handoff-storm experiment").
//!
//! Arguments: an optional hexadecimal seed (default `4A0D`), plus
//! `--boards N` and `--shards N`. With `--boards 1` (the default) this
//! prints the classic single-board sweep; with more boards it runs the
//! storm cell as a fleet on the sharded engine. The report is a pure
//! function of (seed, boards) — the shard count is echoed to stderr only,
//! so the CI shard-invariance gate can diff stdout byte-for-byte across
//! shard counts.
fn main() {
    let (seed, boards, shards) = bench::fleet::parse_storm_args(0x4A0D);
    println!("seed = {seed:#x}\n");
    if boards > 1 {
        eprintln!("fleet: {boards} boards, {shards} shards");
        println!("boards = {boards}\n");
        println!(
            "{}",
            bench::handoff_storm::fleet_table(seed, boards, shards).render()
        );
        println!("fo-sent counts SERVFAILs retried against the next board in the ring;");
        println!("'dropped B' and 'dup B' must stay zero on every board of the fleet.");
    } else {
        println!("{}", bench::handoff_storm::table(seed).render());
        println!("'dropped B' and 'dup B' are the result: zero means every migrated");
        println!("connection completed its HTTP exchange against the unikernel with no");
        println!("payload byte lost or duplicated across the two-phase commit.");
    }
}
