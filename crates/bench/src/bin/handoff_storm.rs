//! Handoff-storm experiment: live TCP flows migrated from Synjitsu to
//! booted unikernels mid-request (see `bench::handoff_storm` and README
//! § "The handoff-storm experiment").
//!
//! Optional argument: a hexadecimal seed (default `4A0D`). The storm is a
//! pure function of the seed — two runs with the same seed print
//! byte-identical reports.
fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| u64::from_str_radix(s.trim_start_matches("0x"), 16).ok())
        .unwrap_or(0x4A0D);
    println!("seed = {seed:#x}\n");
    println!("{}", bench::handoff_storm::table(seed).render());
    println!("'dropped B' and 'dup B' are the result: zero means every migrated");
    println!("connection completed its HTTP exchange against the unikernel with no");
    println!("payload byte lost or duplicated across the two-phase commit.");
}
