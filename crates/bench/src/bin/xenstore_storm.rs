//! XenStore-storm experiment: concurrent-transaction abort/merge rates per
//! engine, plus the snapshot-scaling table showing that persistent-tree
//! snapshots copy zero nodes at any store size (see `bench::xenstore_storm`
//! and README § "The XenStore engine").
//!
//! Optional argument: a hexadecimal seed (default `5707`). The report is a
//! pure function of the seed — two runs with the same seed print
//! byte-identical tables.
fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| u64::from_str_radix(s.trim_start_matches("0x"), 16).ok())
        .unwrap_or(0x5707);
    println!("seed = {seed:#x}\n");
    println!("{}", bench::xenstore_storm::merge_table(seed).render());
    println!("{}", bench::xenstore_storm::snapshot_table().render());
    println!("disjoint-path transactions merge with zero EAGAIN aborts on the Jitsu");
    println!("engine; snapshots copy no nodes, and one write copies only its spine.");
}
