//! §4 throughput: the disk-bound HTTP persistent queue service and the
//! Linux-vs-Mirage iperf parity check.
//!
//! "it served HTTP traffic at a rate of 57.92Mb/s, at which point it becomes
//! disk bound. An iperf test with checksum offloading enabled revealed the
//! same performance for Linux and MirageOS VMs."

use jitsu_sim::{SimDuration, SimRng, Table};
use netstack::http::HttpRequest;
use platform::{BoardKind, StorageKind};
use unikernel::appliance::{Appliance, QueueAppliance};

/// Result of the HTTP persistent-queue throughput run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputResult {
    /// Sustained application throughput in Mb/s.
    pub mbps: f64,
    /// Number of requests served.
    pub requests: usize,
    /// Bytes served.
    pub bytes: u64,
}

/// Serve `requests` GETs of `item_bytes` items from the queue appliance
/// backed by the given storage and measure throughput (protocol overheads
/// included as per-request stack time).
pub fn queue_throughput(
    storage: StorageKind,
    requests: usize,
    item_bytes: usize,
    seed: u64,
) -> ThroughputResult {
    let board = BoardKind::Cubieboard2.board();
    let mut rng = SimRng::seed_from_u64(seed);
    let mut appliance = QueueAppliance::new("queue.family.name", storage.device());
    appliance.preload(requests, item_bytes);
    let mut total = SimDuration::ZERO;
    let mut bytes = 0u64;
    for _ in 0..requests {
        let (resp, cost) = appliance.handle(&HttpRequest::get("/q", "queue.family.name"), &mut rng);
        assert_eq!(resp.status, 200);
        bytes += resp.body.len() as u64;
        // Requests are pipelined: disk reads for the next item overlap with
        // transmitting the previous response, so each request costs the
        // *maximum* of its storage time and its network time — "disk bound"
        // means the storage term dominates.
        let network =
            board.wire_time(resp.body.len() + 256) + board.scale_cpu(SimDuration::from_micros(60));
        total += cost.max(network);
    }
    ThroughputResult {
        mbps: bytes as f64 * 8.0 / total.as_secs_f64() / 1e6,
        requests,
        bytes,
    }
}

/// The iperf parity check: with checksum offload, both a Linux guest and a
/// MirageOS guest saturate the same bottleneck (the 100 Mb/s NIC on the
/// Cubieboard2). Returns `(linux Mb/s, mirage Mb/s)`.
pub fn iperf_parity() -> (f64, f64) {
    let board = BoardKind::Cubieboard2.board();
    // Both stacks are bottlenecked by the wire once checksum offload removes
    // the per-byte CPU cost; the per-packet costs differ slightly but are
    // hidden behind the 100 Mb/s link.
    let wire_limit = board.nic_mbps as f64;
    let linux_overhead = 0.94; // protocol + ring overheads
    let mirage_overhead = 0.94;
    (wire_limit * linux_overhead, wire_limit * mirage_overhead)
}

/// Render the throughput table.
pub fn table() -> Table {
    let mut t = Table::new(
        "§4 Throughput: HTTP persistent queue and iperf parity",
        &["Experiment", "Configuration", "Throughput (Mb/s)"],
    );
    let sd = queue_throughput(StorageKind::SdCard, 400, 64 * 1024, 42);
    let ssd = queue_throughput(StorageKind::Ssd, 400, 64 * 1024, 42);
    t.add_row(&[
        "HTTP persistent queue (disk bound)".to_string(),
        "SD card backing".to_string(),
        format!("{:.2}", sd.mbps),
    ]);
    t.add_row(&[
        "HTTP persistent queue".to_string(),
        "SSD backing".to_string(),
        format!("{:.2}", ssd.mbps),
    ]);
    let (linux, mirage) = iperf_parity();
    t.add_row(&[
        "iperf (checksum offload)".to_string(),
        "Linux VM".to_string(),
        format!("{linux:.1}"),
    ]);
    t.add_row(&[
        "iperf (checksum offload)".to_string(),
        "MirageOS unikernel".to_string(),
        format!("{mirage:.1}"),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sd_backed_queue_serves_around_58_mbps() {
        let r = queue_throughput(StorageKind::SdCard, 300, 64 * 1024, 7);
        assert!(
            (40.0..75.0).contains(&r.mbps),
            "paper: 57.92 Mb/s disk bound, got {:.1}",
            r.mbps
        );
        assert_eq!(r.requests, 300);
        assert_eq!(r.bytes, 300 * 64 * 1024);
    }

    #[test]
    fn ssd_backing_removes_the_disk_bottleneck() {
        let sd = queue_throughput(StorageKind::SdCard, 200, 64 * 1024, 7);
        let ssd = queue_throughput(StorageKind::Ssd, 200, 64 * 1024, 7);
        assert!(ssd.mbps > sd.mbps * 1.5);
    }

    #[test]
    fn iperf_shows_parity_between_linux_and_mirage() {
        let (linux, mirage) = iperf_parity();
        assert!(
            (linux - mirage).abs() < 1.0,
            "no regression on ARM: {linux} vs {mirage}"
        );
        assert!(linux <= 100.0, "bounded by the 100 Mb/s NIC");
        assert!(linux > 80.0);
    }

    #[test]
    fn table_renders_all_rows() {
        let t = table();
        assert_eq!(t.row_count(), 4);
        assert!(t.render().contains("disk bound"));
    }
}
