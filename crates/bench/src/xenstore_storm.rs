//! The XenStore-storm experiment: concurrent-transaction throughput and
//! abort/merge behaviour of the persistent-tree store.
//!
//! The paper's headline boot latencies rest on its from-scratch XenStore
//! rewrite: immutable prefix trees make transaction snapshots O(1), and
//! non-conflicting concurrent transactions *merge* at commit instead of
//! aborting with `EAGAIN`. This experiment measures both claims directly on
//! the real [`xenstore`] implementation:
//!
//! * **merge sweep** — `writers` concurrent toolstack threads, each running
//!   `txns_per_writer` transactions against its own disjoint subtree, with
//!   every transaction in a round held open until the whole round commits
//!   (the overlap pattern of parallel domain builds). Per engine we report
//!   commits, *merged* commits (committed onto a base another writer had
//!   already advanced), `EAGAIN` aborts and the resulting abort/merge rates.
//!   On the Jitsu engine every disjoint-path transaction commits via merge
//!   — zero aborts — while the serialising engine aborts almost the entire
//!   overlap.
//! * **snapshot sweep** — stores pre-populated with increasing node counts;
//!   for each size we take a transaction snapshot and count how many nodes
//!   it copied (none: the snapshot shares the live root), then apply one
//!   write and count again (only the root-to-leaf spine). Snapshot cost no
//!   longer scales with store size.
//!
//! Everything is deterministic: the report is a pure function of the seed.

use jitsu_sim::{SimRng, Table};
use xenstore::{DomId, EngineKind, Error as XsError, Path, Tree, XenStore};

/// One cell of the merge sweep.
#[derive(Debug, Clone)]
pub struct XsStormConfig {
    /// Reconciliation engine under test.
    pub engine: EngineKind,
    /// Concurrent writers (parallel toolstack threads).
    pub writers: usize,
    /// Transactions each writer issues (the "rate" axis: every round keeps
    /// one transaction per writer open simultaneously).
    pub txns_per_writer: usize,
    /// Writes per transaction.
    pub ops_per_txn: usize,
    /// Nodes pre-populated in the store before the storm.
    pub prepopulated: usize,
    /// Seed for value bytes (keeps the workload deterministic but
    /// non-degenerate).
    pub seed: u64,
}

/// The measured outcome of one merge-sweep cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XsStormResult {
    /// Engine label.
    pub engine: EngineKind,
    /// Concurrent writers.
    pub writers: usize,
    /// Transactions attempted (excluding retries).
    pub txns: u64,
    /// Successful commits (including retried attempts that landed).
    pub commits: u64,
    /// Commits that merged onto a concurrently advanced base.
    pub merged: u64,
    /// Commits aborted with `EAGAIN`.
    pub conflicts: u64,
    /// Retry attempts needed to land every transaction.
    pub retries: u64,
}

impl XsStormResult {
    /// Fraction of commit attempts aborted with `EAGAIN`.
    pub fn abort_rate(&self) -> f64 {
        let attempts = self.commits + self.conflicts;
        if attempts == 0 {
            0.0
        } else {
            self.conflicts as f64 / attempts as f64
        }
    }

    /// Fraction of successful commits that landed via the merge path.
    pub fn merge_rate(&self) -> f64 {
        if self.commits == 0 {
            0.0
        } else {
            self.merged as f64 / self.commits as f64
        }
    }
}

fn prepopulate(xs: &mut XenStore, nodes: usize) {
    for i in 0..nodes {
        xs.write(
            DomId::DOM0,
            None,
            &format!("/warm/b{}/k{}", i % 64, i),
            b"seed",
        )
        .expect("prepopulation writes succeed");
    }
}

/// Run one merge-sweep cell: `writers` transactions per round, all opened
/// before any commits (the interleaving parallel domain builds produce),
/// each writing `ops_per_txn` keys under the writer's own subtree.
pub fn run_cell(cfg: &XsStormConfig) -> XsStormResult {
    let mut xs = XenStore::new(cfg.engine);
    prepopulate(&mut xs, cfg.prepopulated);
    let mut rng = SimRng::seed_from_u64(cfg.seed ^ 0x5707_3713);
    let mut retries = 0u64;

    for round in 0..cfg.txns_per_writer {
        // Every writer opens its transaction before anyone commits.
        let mut open = Vec::new();
        for writer in 0..cfg.writers {
            let tx = xs
                .transaction_start(DomId::DOM0)
                .expect("dom0 transactions are not quota-limited");
            for op in 0..cfg.ops_per_txn {
                let path = format!("/local/domain/{}/r{}/op{}", 2000 + writer, round, op);
                let value = [rng.index(256) as u8, writer as u8, op as u8];
                xs.write(DomId::DOM0, Some(tx), &path, &value)
                    .expect("transactional write succeeds");
            }
            open.push((writer, tx));
        }
        // Commit in order; aborted transactions are redone immediately
        // (the toolstack's retry loop), still overlapping the writers that
        // committed after them in the round.
        for (writer, tx) in open {
            if xs.transaction_end(DomId::DOM0, tx, true) == Err(XsError::Again) {
                let attempts = xs
                    .with_transaction(DomId::DOM0, 16, |xs, t| {
                        for op in 0..cfg.ops_per_txn {
                            let path =
                                format!("/local/domain/{}/r{}/op{}", 2000 + writer, round, op);
                            xs.write(DomId::DOM0, Some(t), &path, b"retry")?;
                        }
                        Ok(())
                    })
                    .expect("the retry loop eventually lands");
                retries += attempts as u64;
            }
        }
    }

    let stats = xs.stats();
    XsStormResult {
        engine: cfg.engine,
        writers: cfg.writers,
        txns: (cfg.writers * cfg.txns_per_writer) as u64,
        commits: stats.commits,
        merged: stats.merged,
        conflicts: stats.conflicts,
        retries,
    }
}

/// The default merge sweep: engines × writers × transaction rate, on a
/// store pre-populated with 2 000 nodes so snapshots would hurt if they
/// still deep-cloned.
pub fn default_sweep(seed: u64) -> Vec<XsStormConfig> {
    let mut cells = Vec::new();
    for engine in EngineKind::ALL {
        for &(writers, txns_per_writer) in &[(2usize, 8usize), (8, 8), (16, 4), (32, 4)] {
            cells.push(XsStormConfig {
                engine,
                writers,
                txns_per_writer,
                ops_per_txn: 6,
                prepopulated: 2_000,
                seed,
            });
        }
    }
    cells
}

/// One row of the snapshot-scaling sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotPoint {
    /// Nodes in the store when the snapshot was taken.
    pub store_nodes: usize,
    /// Nodes copied by taking the snapshot (always zero: O(1) clone).
    pub copied_by_snapshot: usize,
    /// Nodes copied after applying one write through the snapshot — the
    /// root-to-leaf spine only, independent of store size.
    pub copied_by_one_write: usize,
}

/// Measure structural sharing for a store pre-populated with `keys` leaf
/// keys (spread over 64 buckets; `store_nodes` in the result reports the
/// exact total).
pub fn snapshot_point(keys: usize) -> SnapshotPoint {
    let mut tree = Tree::new();
    for i in 0..keys {
        tree.write(
            DomId::DOM0,
            &Path::parse(&format!("/warm/b{}/k{}", i % 64, i)).expect("valid path"),
            b"seed",
        )
        .expect("prepopulation writes succeed");
    }
    let total = tree.node_count();
    let snapshot = tree.clone();
    let copied_by_snapshot = total - tree.shared_node_count(&snapshot);
    let mut mutated = snapshot.clone();
    mutated
        .write(
            DomId::DOM0,
            &Path::parse("/warm/b0/k0").expect("valid path"),
            b"mutated",
        )
        .expect("the write succeeds");
    let copied_by_one_write = mutated.node_count() - mutated.shared_node_count(&tree);
    SnapshotPoint {
        store_nodes: total,
        copied_by_snapshot,
        copied_by_one_write,
    }
}

/// The store sizes (leaf-key counts) the snapshot sweep covers.
pub fn snapshot_sizes() -> Vec<usize> {
    vec![100, 1_000, 10_000, 50_000]
}

/// Render the merge sweep as the experiment's report table.
pub fn merge_table(seed: u64) -> Table {
    let mut table = Table::new(
        "XenStore storm: overlapping disjoint-path transactions, per engine (2000-node store)",
        &[
            "engine", "writers", "txns/w", "txns", "commits", "merged", "EAGAIN", "retries",
            "abort %", "merge %",
        ],
    );
    for cfg in default_sweep(seed) {
        let r = run_cell(&cfg);
        table.add_row(&[
            r.engine.label().to_string(),
            r.writers.to_string(),
            cfg.txns_per_writer.to_string(),
            r.txns.to_string(),
            r.commits.to_string(),
            r.merged.to_string(),
            r.conflicts.to_string(),
            r.retries.to_string(),
            format!("{:.1}", r.abort_rate() * 100.0),
            format!("{:.1}", r.merge_rate() * 100.0),
        ]);
    }
    table
}

/// Render the snapshot-scaling sweep.
pub fn snapshot_table() -> Table {
    let mut table = Table::new(
        "XenStore snapshots: nodes copied per snapshot and per first write (persistent tree, structural sharing)",
        &["store nodes", "copied by snapshot", "copied by one write"],
    );
    for size in snapshot_sizes() {
        let p = snapshot_point(size);
        table.add_row(&[
            p.store_nodes.to_string(),
            p.copied_by_snapshot.to_string(),
            p.copied_by_one_write.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(engine: EngineKind, writers: usize) -> XsStormConfig {
        XsStormConfig {
            engine,
            writers,
            txns_per_writer: 4,
            ops_per_txn: 4,
            prepopulated: 500,
            seed: 0x5707,
        }
    }

    #[test]
    fn jitsu_engine_commits_every_disjoint_transaction_with_zero_aborts() {
        for cfg in default_sweep(0x5707)
            .into_iter()
            .filter(|c| c.engine == EngineKind::JitsuMerge)
        {
            let r = run_cell(&cfg);
            assert_eq!(r.conflicts, 0, "disjoint paths must never abort: {r:?}");
            assert_eq!(r.commits, r.txns, "every transaction lands first try");
            assert!(
                r.merged > 0,
                "overlapping rounds must exercise the merge path: {r:?}"
            );
            assert_eq!(r.retries, 0);
        }
    }

    #[test]
    fn serial_engine_aborts_most_of_the_overlap() {
        let serial = run_cell(&cell(EngineKind::Serial, 8));
        let jitsu = run_cell(&cell(EngineKind::JitsuMerge, 8));
        assert!(
            serial.conflicts > 0,
            "any interleaving aborts the serialising engine"
        );
        assert!(serial.retries > 0);
        assert!(serial.abort_rate() > jitsu.abort_rate());
        assert_eq!(jitsu.conflicts, 0);
    }

    #[test]
    fn oxenstored_merge_sits_between_the_two() {
        // Sibling creations under /local/domain conflict for the OCaml
        // merge (shared parent child-list) but not for Jitsu's.
        let merge = run_cell(&cell(EngineKind::Merge, 8));
        let serial = run_cell(&cell(EngineKind::Serial, 8));
        assert!(merge.conflicts > 0);
        assert!(merge.conflicts <= serial.conflicts);
    }

    #[test]
    fn snapshots_copy_nothing_regardless_of_store_size() {
        let mut last_write_cost = None;
        for size in [100, 1_000, 10_000] {
            let p = snapshot_point(size);
            assert_eq!(
                p.copied_by_snapshot, 0,
                "snapshot must be an O(1) pointer copy at {size} nodes"
            );
            assert!(
                p.copied_by_one_write <= 4,
                "one write copies only the spine: {p:?}"
            );
            // The spine length is constant across sizes (same path shape).
            if let Some(last) = last_write_cost {
                assert_eq!(p.copied_by_one_write, last);
            }
            last_write_cost = Some(p.copied_by_one_write);
        }
    }

    #[test]
    fn reports_are_a_pure_function_of_the_seed() {
        let a = merge_table(0xABCD).render();
        let b = merge_table(0xABCD).render();
        assert_eq!(a, b);
        let c = snapshot_table().render();
        let d = snapshot_table().render();
        assert_eq!(c, d);
    }

    #[test]
    fn rates_are_well_formed() {
        let r = run_cell(&cell(EngineKind::Serial, 4));
        assert!((0.0..=1.0).contains(&r.abort_rate()));
        assert!((0.0..=1.0).contains(&r.merge_rate()));
        let empty = XsStormResult {
            engine: EngineKind::Serial,
            writers: 0,
            txns: 0,
            commits: 0,
            merged: 0,
            conflicts: 0,
            retries: 0,
        };
        assert_eq!(empty.abort_rate(), 0.0);
        assert_eq!(empty.merge_rate(), 0.0);
    }
}
