//! The boot-storm experiment: concurrent summoning under open-loop load.
//!
//! §3.3's scaling story — launch *while* answering, coalesce duplicate
//! queries, reap idle unikernels, and fail over with `SERVFAIL` under
//! resource exhaustion — only shows up when many DNS queries for many names
//! overlap. This experiment drives the event-driven
//! [`ConcurrentJitsud`] engine with open-loop Poisson arrivals spread
//! uniformly across N configured services, sweeping the arrival rate and
//! the launch-slot count, and reports p50/p95/p99 time-to-first-byte plus
//! the `SERVFAIL` rate for each cell.
//!
//! Two regimes are swept:
//!
//! * **slot-bound** — the working set fits in board memory; as the arrival
//!   rate passes the toolstack's build throughput (≈ slots / 120 ms on the
//!   Cubieboard2), launches queue on the semaphore and tail latency grows
//!   *gracefully* (no failures, just longer boots);
//! * **memory-bound** — more names than the board can hold and no reaping
//!   within the run; once memory is exhausted, additional names are
//!   answered `SERVFAIL` so clients fail over to another board (§3.3.2).
//!
//! Everything is scheduled on the deterministic `jitsu_sim` engine, so a
//! fixed seed reproduces the storm byte for byte.

use crate::fleet::{board_seed, FLEET_EPOCH};
use jitsu::concurrent::ConcurrentJitsud;
use jitsu::config::{JitsuConfig, ServiceConfig};
use jitsu_sim::{DomainId, ShardedSim, SimDuration, SimRng, SimTime, Table};
use netstack::ipv4::Ipv4Addr;
use platform::BoardKind;

/// One sweep cell: a storm configuration.
#[derive(Debug, Clone)]
pub struct StormConfig {
    /// Regime label shown in the report.
    pub label: &'static str,
    /// Number of configured services (distinct DNS names).
    pub services: usize,
    /// Memory per service unikernel, in MiB.
    pub service_mib: u32,
    /// Mean query arrival rate across all names, per second (Poisson).
    pub rate_per_sec: f64,
    /// Launch-slot semaphore capacity.
    pub launch_slots: u32,
    /// Idle TTL before a unikernel is reaped.
    pub idle_ttl: SimDuration,
    /// Length of the arrival window (the sim then drains to quiescence).
    pub duration: SimDuration,
    /// RNG seed for the arrival process (and the engine).
    pub seed: u64,
}

impl StormConfig {
    /// A slot-bound cell: 24 light services (384 MiB working set, well
    /// inside the Cubieboard2's 832 MiB of guest memory) with a 1 s idle
    /// TTL so nearly every arrival is a cold start.
    pub fn slot_bound(rate_per_sec: f64, launch_slots: u32, seed: u64) -> StormConfig {
        StormConfig {
            label: "slot-bound",
            services: 24,
            service_mib: 16,
            rate_per_sec,
            launch_slots,
            idle_ttl: SimDuration::from_secs(1),
            duration: SimDuration::from_secs(20),
            seed,
        }
    }

    /// A memory-bound cell: `services` names with no reaping inside the
    /// run, so the board fills up and stays full.
    pub fn memory_bound(services: usize, seed: u64) -> StormConfig {
        StormConfig {
            label: "memory-bound",
            services,
            service_mib: 16,
            rate_per_sec: 8.0,
            launch_slots: 2,
            idle_ttl: SimDuration::from_secs(600),
            duration: SimDuration::from_secs(20),
            seed,
        }
    }
}

/// The measured outcome of one storm cell.
#[derive(Debug, Clone, PartialEq)]
pub struct StormResult {
    /// The configuration label.
    pub label: &'static str,
    /// Services configured.
    pub services: usize,
    /// Launch slots.
    pub launch_slots: u32,
    /// Offered arrival rate, per second.
    pub rate_per_sec: f64,
    /// Queries that arrived inside the window.
    pub queries: u64,
    /// Domains constructed.
    pub launches: u64,
    /// Queries that coalesced onto an in-flight boot.
    pub coalesced: u64,
    /// Requests served by a cold start (parked on a boot, then served).
    pub cold_served: u64,
    /// Queries served by an already-running unikernel.
    pub warm_hits: u64,
    /// Queries answered `SERVFAIL` (memory exhaustion).
    pub servfails: u64,
    /// Idle unikernels reaped.
    pub reaps: u64,
    /// Connections handed from Synjitsu to booted unikernels.
    pub syn_handoffs: u64,
    /// Fraction of service queries answered `SERVFAIL`.
    pub servfail_rate: f64,
    /// Median time-to-first-byte, ms.
    pub p50_ms: f64,
    /// 95th-percentile time-to-first-byte, ms.
    pub p95_ms: f64,
    /// 99th-percentile time-to-first-byte, ms.
    pub p99_ms: f64,
    /// XenStore commits that landed on a concurrently advanced base and
    /// merged instead of aborting (each boot holds its registration
    /// transaction open for the whole construction window).
    pub xs_merged: u64,
    /// XenStore commits aborted with `EAGAIN` — zero on the Jitsu engine.
    pub xs_conflicts: u64,
}

/// Build the Jitsu host configuration for a storm cell.
fn host_config(cfg: &StormConfig) -> JitsuConfig {
    let mut host = JitsuConfig::new("storm.example")
        .with_launch_slots(cfg.launch_slots)
        .with_idle_timeout(cfg.idle_ttl);
    for i in 0..cfg.services {
        let ip = Ipv4Addr::new(192, 168, 2 + (i / 200) as u8, 20 + (i % 200) as u8);
        let mut svc = ServiceConfig::http_site(&format!("svc{i:03}.storm.example"), ip);
        svc.image.memory_mib = cfg.service_mib;
        host = host.with_service(svc);
    }
    host
}

/// The Poisson arrival times and service names of one board's storm, a
/// pure function of `(cfg, seed)` — shared between the flat single-board
/// run and every board of a fleet so the two agree bit-for-bit.
fn arrivals(cfg: &StormConfig, seed: u64) -> Vec<(SimTime, String)> {
    let mut rng = SimRng::seed_from_u64(seed ^ 0xB007_5708);
    let mean_gap = 1.0 / cfg.rate_per_sec;
    let window = cfg.duration.as_secs_f64();
    let mut t = 0.0;
    let mut out = Vec::new();
    loop {
        t += rng.exponential(mean_gap);
        if t >= window {
            break;
        }
        let service = rng.index(cfg.services);
        let name = format!("svc{service:03}.storm.example");
        out.push((SimTime::ZERO + SimDuration::from_secs_f64(t), name));
    }
    out
}

/// Run one storm cell to quiescence and collect its metrics.
pub fn run_storm(cfg: &StormConfig) -> StormResult {
    let board = BoardKind::Cubieboard2.board();
    let mut sim = ConcurrentJitsud::sim(host_config(cfg), board, cfg.seed);

    // Open-loop Poisson arrivals: exponential inter-arrival times at the
    // offered rate, each query aimed at a uniformly random service. The
    // arrival process never waits for the system (that is what makes the
    // overload regimes visible).
    for (at, name) in arrivals(cfg, cfg.seed) {
        ConcurrentJitsud::inject_query(&mut sim, at, &name);
    }
    // Drain: every in-flight boot completes, every idle unikernel is
    // reaped, and the event queue empties.
    sim.run();
    collect_result(cfg, sim.world())
}

/// Build a cell's [`StormResult`] from a finished world (flat or fleet).
fn collect_result(cfg: &StormConfig, world: &ConcurrentJitsud) -> StormResult {
    let xs = world.xenstore_stats();
    let m = world.metrics();
    let tail = m.ttfb.percentiles_ms(&[50.0, 95.0, 99.0]);
    StormResult {
        label: cfg.label,
        services: cfg.services,
        launch_slots: cfg.launch_slots,
        rate_per_sec: cfg.rate_per_sec,
        queries: m.queries,
        launches: m.launches,
        coalesced: m.coalesced,
        cold_served: m.cold_served,
        warm_hits: m.warm_hits,
        servfails: m.servfails,
        reaps: m.reaps,
        syn_handoffs: m.syn_handoffs,
        servfail_rate: m.servfail_rate(),
        p50_ms: tail[0],
        p95_ms: tail[1],
        p99_ms: tail[2],
        xs_merged: xs.merged,
        xs_conflicts: xs.conflicts,
    }
}

/// The default sweep: arrival rate × launch slots in the slot-bound
/// regime, then the memory-bound pair (below and past the board's limit).
pub fn default_sweep(seed: u64) -> Vec<StormConfig> {
    vec![
        StormConfig::slot_bound(2.0, 1, seed),
        StormConfig::slot_bound(8.0, 1, seed),
        StormConfig::slot_bound(24.0, 1, seed),
        StormConfig::slot_bound(8.0, 2, seed),
        StormConfig::slot_bound(24.0, 2, seed),
        StormConfig::slot_bound(24.0, 4, seed),
        // 40 × 16 MiB = 640 MiB fits; 80 × 16 MiB = 1280 MiB does not
        // (the Cubieboard2 offers 832 MiB of guest memory).
        StormConfig::memory_bound(40, seed),
        StormConfig::memory_bound(80, seed),
    ]
}

/// Render the sweep as the experiment's report table.
pub fn table(seed: u64) -> Table {
    let mut table = Table::new(
        "Boot storm: open-loop Poisson arrivals over N services (Cubieboard2, optimised toolstack, Synjitsu on)",
        &[
            "regime",
            "services",
            "slots",
            "rate/s",
            "queries",
            "launches",
            "coalesced",
            "warm",
            "reaps",
            "SERVFAIL %",
            "TTFB p50 ms",
            "TTFB p95 ms",
            "TTFB p99 ms",
        ],
    );
    for cfg in default_sweep(seed) {
        let r = run_storm(&cfg);
        table.add_row(&[
            r.label.to_string(),
            r.services.to_string(),
            r.launch_slots.to_string(),
            format!("{:.0}", r.rate_per_sec),
            r.queries.to_string(),
            r.launches.to_string(),
            r.coalesced.to_string(),
            r.warm_hits.to_string(),
            r.reaps.to_string(),
            format!("{:.1}", r.servfail_rate * 100.0),
            format!("{:.1}", r.p50_ms),
            format!("{:.1}", r.p95_ms),
            format!("{:.1}", r.p99_ms),
        ]);
    }
    table
}

/// The outcome of one storm cell run as a fleet of boards on the sharded
/// engine: per-board results plus fleet-wide fail-over and engine counters.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetStormResult {
    /// Per-board cell results, in board-id order.
    pub boards: Vec<StormResult>,
    /// `SERVFAIL`ed queries forwarded to a peer board at an epoch barrier.
    pub failovers: u64,
    /// Queries dropped after every board in the ring refused them.
    pub failover_dropped: u64,
    /// Total events executed by the sharded engine (shard-count-invariant).
    pub events: u64,
    /// Epoch barriers processed (shard-count-invariant).
    pub barriers: u64,
}

/// Run one cell as a fleet of `boards` boards at `shards` shards.
///
/// Each board gets its own world and its own arrival stream (derived from
/// [`board_seed`], so board 0 of a 1-board fleet reproduces [`run_storm`]
/// bit-for-bit), and `SERVFAIL`ed queries fail over around the board ring
/// at epoch barriers. The result is invariant in `shards` — the CI
/// shard-invariance gate diffs rendered outputs at 1 and 4 shards.
pub fn run_fleet(cfg: &StormConfig, boards: u32, shards: u32) -> FleetStormResult {
    let boards = boards.max(1);
    let mut sim = ShardedSim::new(shards, FLEET_EPOCH);
    for b in 0..boards {
        let seed = board_seed(cfg.seed, b);
        let mut host = host_config(cfg);
        // A single standalone board keeps fail-over off so its behaviour
        // is bit-identical to the classic flat-engine run.
        host.failover = boards > 1;
        let mut world = ConcurrentJitsud::world(host, BoardKind::Cubieboard2.board(), seed);
        world.set_failover_hops(boards - 1);
        sim.add_domain(world, seed);
    }
    for b in 0..boards {
        for (at, name) in arrivals(cfg, board_seed(cfg.seed, b)) {
            jitsu::fleet::inject_query(&mut sim, DomainId(b), at, &name);
        }
    }
    sim.run();
    let events = sim.events_executed();
    let barriers = sim.barriers();
    let worlds = sim.into_worlds();
    FleetStormResult {
        failovers: worlds.iter().map(|w| w.metrics().failovers).sum(),
        failover_dropped: worlds.iter().map(|w| w.metrics().failover_dropped).sum(),
        boards: worlds.iter().map(|w| collect_result(cfg, w)).collect(),
        events,
        barriers,
    }
}

/// The fleet sweep: one slot-bound and one memory-bound cell (the latter is
/// where `SERVFAIL` fail-over between boards actually fires), shortened to
/// a 10 s window per board.
pub fn fleet_sweep(seed: u64) -> Vec<StormConfig> {
    let mut slot = StormConfig::slot_bound(8.0, 2, seed);
    slot.duration = SimDuration::from_secs(10);
    let mut memory = StormConfig::memory_bound(60, seed);
    memory.duration = SimDuration::from_secs(10);
    // Heavier images than the classic cell: each board exhausts its
    // 832 MiB of guest memory inside the shortened window, so the
    // fail-over ring actually carries traffic in the fleet report.
    memory.service_mib = 48;
    vec![slot, memory]
}

/// Render the fleet sweep as a report table: one row per board plus a
/// `TOTAL` row per cell. Deliberately *not* a function of the shard count —
/// the CI shard-invariance gate diffs this output byte-for-byte across
/// shard counts.
pub fn fleet_table(seed: u64, boards: u32, shards: u32) -> Table {
    let mut table = Table::new(
        "Boot storm fleet: per-board Poisson arrivals, SERVFAIL fail-over around the board ring at 50 ms epoch barriers (Cubieboard2 x N)",
        &[
            "regime",
            "board",
            "queries",
            "launches",
            "cold",
            "warm",
            "SERVFAIL",
            "fo-sent",
            "fo-drop",
            "reaps",
            "events",
            "barriers",
        ],
    );
    for cfg in fleet_sweep(seed) {
        let r = run_fleet(&cfg, boards, shards);
        for (b, br) in r.boards.iter().enumerate() {
            table.add_row(&[
                br.label.to_string(),
                b.to_string(),
                br.queries.to_string(),
                br.launches.to_string(),
                br.cold_served.to_string(),
                br.warm_hits.to_string(),
                br.servfails.to_string(),
                "-".to_string(),
                "-".to_string(),
                br.reaps.to_string(),
                "-".to_string(),
                "-".to_string(),
            ]);
        }
        table.add_row(&[
            cfg.label.to_string(),
            "TOTAL".to_string(),
            r.boards.iter().map(|b| b.queries).sum::<u64>().to_string(),
            r.boards.iter().map(|b| b.launches).sum::<u64>().to_string(),
            r.boards
                .iter()
                .map(|b| b.cold_served)
                .sum::<u64>()
                .to_string(),
            r.boards
                .iter()
                .map(|b| b.warm_hits)
                .sum::<u64>()
                .to_string(),
            r.boards
                .iter()
                .map(|b| b.servfails)
                .sum::<u64>()
                .to_string(),
            r.failovers.to_string(),
            r.failover_dropped.to_string(),
            r.boards.iter().map(|b| b.reaps).sum::<u64>().to_string(),
            r.events.to_string(),
            r.barriers.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small cell for unit tests (seconds of virtual time, not minutes).
    fn quick(rate: f64, slots: u32, services: usize, ttl_secs: u64) -> StormConfig {
        StormConfig {
            label: "quick",
            services,
            service_mib: 16,
            rate_per_sec: rate,
            launch_slots: slots,
            idle_ttl: SimDuration::from_secs(ttl_secs),
            duration: SimDuration::from_secs(6),
            seed: 0xB007,
        }
    }

    #[test]
    fn p99_degrades_gracefully_past_slot_capacity() {
        // One slot sustains ≈8 launches/s; rate 16 overloads it.
        let light = run_storm(&quick(2.0, 1, 12, 1));
        let heavy = run_storm(&quick(16.0, 1, 12, 1));
        assert_eq!(light.servfails, 0);
        assert_eq!(heavy.servfails, 0, "overload queues, it does not fail");
        assert!(
            heavy.p99_ms > light.p99_ms,
            "p99 {:.0} ms (overload) vs {:.0} ms (light)",
            heavy.p99_ms,
            light.p99_ms
        );
        assert!(heavy.launches > 0 && heavy.coalesced > 0);
        // Still served: every query is accounted for and none failed.
        assert_eq!(heavy.queries, heavy.warm_hits + heavy.cold_served);
    }

    #[test]
    fn servfail_only_past_the_memory_limit() {
        // Rate 24/s for 10 s ≈ 240 arrivals: enough to touch nearly all
        // configured names in both cells.
        let mut fits = quick(24.0, 2, 30, 600);
        fits.duration = SimDuration::from_secs(10);
        let mut overflows = quick(24.0, 2, 60, 600);
        overflows.duration = SimDuration::from_secs(10);
        let fits = run_storm(&fits);
        let overflows = run_storm(&overflows);
        assert_eq!(
            fits.servfails, 0,
            "30 × 16 MiB = 480 MiB fits in 832 MiB: no SERVFAIL"
        );
        assert!(
            overflows.servfails > 0,
            "60 × 16 MiB = 960 MiB exceeds 832 MiB: SERVFAIL past the limit"
        );
        assert!(overflows.servfail_rate > 0.0 && overflows.servfail_rate < 1.0);
        assert!(overflows.launches <= 52, "at most 832/16 domains fit");
    }

    #[test]
    fn same_seed_yields_byte_identical_reports() {
        let cfg = quick(12.0, 2, 16, 1);
        let a = run_storm(&cfg);
        let b = run_storm(&cfg);
        assert_eq!(a, b, "a storm is a pure function of its seed");
        // And the rendered form (what `reproduce` prints) matches bytewise.
        let row = |r: &StormResult| {
            format!(
                "{} {} {} {:.3} {} {} {} {} {} {:.6} {:.6} {:.6} {:.6}",
                r.label,
                r.services,
                r.launch_slots,
                r.rate_per_sec,
                r.queries,
                r.launches,
                r.coalesced,
                r.warm_hits,
                r.reaps,
                r.servfail_rate,
                r.p50_ms,
                r.p95_ms,
                r.p99_ms
            )
        };
        assert_eq!(row(&a), row(&b));
    }

    #[test]
    fn storms_merge_transactions_instead_of_aborting() {
        // With more than one launch slot, boot-registration transactions
        // overlap; the Jitsu merge engine commits all of them with zero
        // EAGAIN aborts — the Figure 3 property, observed under storm load.
        let r = run_storm(&quick(16.0, 4, 16, 1));
        assert_eq!(r.xs_conflicts, 0, "no storm-time aborts: {r:?}");
        assert!(r.xs_merged > 0, "overlapping boots must merge: {r:?}");
    }

    #[test]
    fn storm_bookkeeping_balances() {
        let r = run_storm(&quick(10.0, 2, 12, 1));
        // At quiescence every query landed in exactly one bucket.
        assert_eq!(r.queries, r.servfails + r.warm_hits + r.cold_served);
        // Every parked SYN was handed over; clients arriving after the
        // handoff point connect to the unikernel directly, so handoffs can
        // only undercount the queue.
        assert!(r.syn_handoffs > 0);
        assert!(r.syn_handoffs <= r.cold_served);
        assert!(r.reaps > 0, "short TTL must reap between bursts");
    }

    #[test]
    fn one_board_fleet_reproduces_the_classic_run() {
        // board_seed(seed, 0) == seed and fail-over is off for a lone
        // board, so the sharded engine must reproduce the flat engine
        // bit-for-bit.
        let cfg = quick(10.0, 2, 12, 1);
        let fleet = run_fleet(&cfg, 1, 1);
        assert_eq!(fleet.boards.len(), 1);
        assert_eq!(fleet.boards[0], run_storm(&cfg));
        assert_eq!(fleet.failovers, 0);
        assert_eq!(fleet.failover_dropped, 0);
    }

    #[test]
    fn fleet_counters_are_invariant_across_shard_counts() {
        let cfg = quick(10.0, 2, 12, 1);
        let one = run_fleet(&cfg, 3, 1);
        for shards in [2, 4, 8] {
            assert_eq!(run_fleet(&cfg, 3, shards), one, "shards={shards}");
        }
    }
}
