//! Table 1: power usage of the evaluation boards, plus the battery-runtime
//! observation of §4.

use jitsu_sim::Table;
use platform::{Battery, BoardKind, PowerComponent, PowerModel, PowerState};

/// Build Table 1.
pub fn table() -> Table {
    let mut table = Table::new(
        "Table 1: Power usage of the ARM boards when running Xen (W, 5V)",
        &["Idle", "Spinning and active components", "Board Model"],
    );
    for board in [BoardKind::Cubieboard2, BoardKind::Cubietruck] {
        let model = PowerModel::for_board(board);
        for (idle, spin, label) in model.table1_rows() {
            table.add_row(&[format!("{idle:.2}"), format!("{spin:.2}"), label]);
        }
    }
    let nuc = PowerModel::for_board(BoardKind::IntelNuc);
    table.add_row(&[
        format!("{:.2}", nuc.watts(PowerState::Idle, &[])),
        format!("{:.2}", nuc.watts(PowerState::Spinning, &[])),
        "Intel Haswell NUC".to_string(),
    ]);
    table
}

/// The battery-runtime estimate for the §4 experiment (a Cubieboard2 with
/// Ethernet, mostly idle, on a typical USB power bank). Returns hours.
pub fn battery_runtime_hours() -> f64 {
    Battery::typical_power_bank().runtime_hours_duty_cycle(
        BoardKind::Cubieboard2,
        &[PowerComponent::Ethernet],
        0.05,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_nine_rows_matching_the_paper() {
        let t = table();
        assert_eq!(t.row_count(), 9, "4 Cubieboard2 + 4 Cubietruck + NUC");
        let rendered = t.render();
        assert!(rendered.contains("1.43"));
        assert!(rendered.contains("2.61"));
        assert!(rendered.contains("Cubietruck +SSD+Ethernet"));
        assert!(rendered.contains("Intel Haswell NUC"));
        assert!(rendered.contains("27.02"));
    }

    #[test]
    fn battery_runtime_is_around_nine_hours() {
        let hours = battery_runtime_hours();
        assert!((7.0..16.0).contains(&hours), "hours={hours:.1}");
    }
}
