//! The handoff-storm experiment: live-connection migration under load.
//!
//! §3.3.1's headline guarantee is that Synjitsu answers TCP on behalf of a
//! booting unikernel and then hands the *live* connections over through a
//! two-phase commit in XenStore, "ensuring only one of them ever handles
//! any given packet". The boot-storm experiment measures latency; this one
//! measures the data plane: every parked client runs a real `netstack`
//! TCP flow carrying an HTTP request, the booted unikernel drains the
//! proxied `Tcb`s over a conduit vchan, adopts them, replays the buffered
//! requests, and the harness checks each client's response stream
//! byte-for-byte against what the appliance serves. Any packet answered by
//! the wrong side of the handoff — or lost in the `Prepare` window — shows
//! up as a non-zero drop/dup count.
//!
//! The sweep crosses arrival rate with launch-slot capacity and reports,
//! per cell: connections migrated across the vchan drain, frames parked in
//! a `Prepare` window and replayed after `Committed`, byte-exact completed
//! exchanges, drop/dup byte counts (the zero columns *are* the result),
//! and the p50/p95/p99 client-observed request latency across the handoff.
//! Everything runs on the deterministic `jitsu_sim` engine: a fixed seed
//! reproduces the storm byte for byte.

use crate::fleet::{board_seed, FLEET_EPOCH};
use jitsu::concurrent::ConcurrentJitsud;
use jitsu::config::{JitsuConfig, ServiceConfig};
use jitsu_sim::{DomainId, ShardedSim, SimDuration, SimRng, SimTime, Table};
use netstack::ipv4::Ipv4Addr;
use platform::BoardKind;

/// One sweep cell: a handoff-storm configuration.
#[derive(Debug, Clone)]
pub struct HandoffStormConfig {
    /// Number of configured services (distinct DNS names).
    pub services: usize,
    /// Mean query arrival rate across all names, per second (Poisson).
    pub rate_per_sec: f64,
    /// Launch-slot semaphore capacity.
    pub launch_slots: u32,
    /// Idle TTL before a unikernel is reaped (short, so the run keeps
    /// relaunching and re-migrating).
    pub idle_ttl: SimDuration,
    /// Length of the arrival window (the sim then drains to quiescence).
    pub duration: SimDuration,
    /// RNG seed for the arrival process (and the engine).
    pub seed: u64,
}

impl HandoffStormConfig {
    /// A sweep cell: 16 light services with a 1 s idle TTL, so nearly
    /// every arrival parks on a boot and crosses the handoff.
    pub fn cell(rate_per_sec: f64, launch_slots: u32, seed: u64) -> HandoffStormConfig {
        HandoffStormConfig {
            services: 16,
            rate_per_sec,
            launch_slots,
            idle_ttl: SimDuration::from_secs(1),
            duration: SimDuration::from_secs(10),
            seed,
        }
    }
}

/// The measured outcome of one handoff-storm cell.
#[derive(Debug, Clone, PartialEq)]
pub struct HandoffStormResult {
    /// Launch slots.
    pub launch_slots: u32,
    /// Offered arrival rate, per second.
    pub rate_per_sec: f64,
    /// Queries that arrived inside the window.
    pub queries: u64,
    /// Domains constructed.
    pub launches: u64,
    /// Connections migrated from Synjitsu to a unikernel via the vchan drain.
    pub migrated: u64,
    /// Frames parked during a `Prepare` window.
    pub queued_prepare: u64,
    /// Parked frames replayed after `Committed`.
    pub replayed: u64,
    /// HTTP exchanges whose response stream reached the client byte-exact.
    pub completed: u64,
    /// Response bytes that never reached a client (must be zero).
    pub dropped_bytes: u64,
    /// Bytes duplicated into a client's stream (must be zero).
    pub duplicated_bytes: u64,
    /// Median request latency across the handoff, ms.
    pub p50_ms: f64,
    /// 95th-percentile request latency, ms.
    pub p95_ms: f64,
    /// 99th-percentile request latency, ms.
    pub p99_ms: f64,
    /// XenStore commits merged onto a concurrently advanced base (boot
    /// registrations and two-phase handoff flips overlapping under load).
    pub xs_merged: u64,
    /// XenStore `EAGAIN` aborts — zero on the Jitsu engine.
    pub xs_conflicts: u64,
}

/// Build the Jitsu host configuration for a cell.
fn host_config(cfg: &HandoffStormConfig) -> JitsuConfig {
    let mut host = JitsuConfig::new("handoff.example")
        .with_launch_slots(cfg.launch_slots)
        .with_idle_timeout(cfg.idle_ttl);
    for i in 0..cfg.services {
        let ip = Ipv4Addr::new(192, 168, 3, 20 + i as u8);
        let mut svc = ServiceConfig::http_site(&format!("svc{i:02}.handoff.example"), ip);
        svc.image.memory_mib = 16;
        host = host.with_service(svc);
    }
    host
}

/// The open-loop Poisson arrival schedule of one cell (or one board of a
/// fleet): absolute arrival times and service names, uniformly spread
/// across the services. A pure function of `(cfg, seed)`, shared by the
/// flat and fleet runners so a 1-board fleet replays the classic stream.
fn arrivals(cfg: &HandoffStormConfig, seed: u64) -> Vec<(SimTime, String)> {
    let mut rng = SimRng::seed_from_u64(seed ^ 0x4A0D_0FF5);
    let mean_gap = 1.0 / cfg.rate_per_sec;
    let window = cfg.duration.as_secs_f64();
    let mut out = Vec::new();
    let mut t = 0.0;
    loop {
        t += rng.exponential(mean_gap);
        if t >= window {
            break;
        }
        let service = rng.index(cfg.services);
        let name = format!("svc{service:02}.handoff.example");
        out.push((SimTime::ZERO + SimDuration::from_secs_f64(t), name));
    }
    out
}

/// Collect the handoff metrics of one quiesced world into a cell result.
fn collect_cell(cfg: &HandoffStormConfig, world: &ConcurrentJitsud) -> HandoffStormResult {
    let xs = world.xenstore_stats();
    let m = world.metrics();
    let tail = m
        .handoff
        .request_latency
        .percentiles_ms(&[50.0, 95.0, 99.0]);
    HandoffStormResult {
        launch_slots: cfg.launch_slots,
        rate_per_sec: cfg.rate_per_sec,
        queries: m.queries,
        launches: m.launches,
        migrated: m.handoff.migrated,
        queued_prepare: m.handoff.queued_during_prepare,
        replayed: m.handoff.replayed_after_commit,
        completed: m.handoff.completed,
        dropped_bytes: m.handoff.dropped_bytes,
        duplicated_bytes: m.handoff.duplicated_bytes,
        p50_ms: tail[0],
        p95_ms: tail[1],
        p99_ms: tail[2],
        xs_merged: xs.merged,
        xs_conflicts: xs.conflicts,
    }
}

/// Run one cell to quiescence and collect its handoff metrics.
pub fn run_cell(cfg: &HandoffStormConfig) -> HandoffStormResult {
    let board = BoardKind::Cubieboard2.board();
    let mut sim = ConcurrentJitsud::sim(host_config(cfg), board, cfg.seed);
    for (at, name) in arrivals(cfg, cfg.seed) {
        ConcurrentJitsud::inject_query(&mut sim, at, &name);
    }
    sim.run();
    collect_cell(cfg, sim.world())
}

/// The outcome of one handoff-storm cell run as a fleet of boards on the
/// sharded engine.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetHandoffResult {
    /// Per-board cell results, in board-id order.
    pub boards: Vec<HandoffStormResult>,
    /// `SERVFAIL`ed queries forwarded to a peer board at an epoch barrier.
    pub failovers: u64,
    /// Queries dropped after every board in the ring refused them.
    pub failover_dropped: u64,
    /// Total events executed by the sharded engine (shard-count-invariant).
    pub events: u64,
    /// Epoch barriers processed (shard-count-invariant).
    pub barriers: u64,
}

/// Run one cell as a fleet of `boards` boards at `shards` shards, each
/// board driving its own arrival stream (seeded via [`board_seed`], so a
/// 1-board fleet reproduces [`run_cell`] bit-for-bit). The result is
/// invariant in `shards`.
pub fn run_fleet(cfg: &HandoffStormConfig, boards: u32, shards: u32) -> FleetHandoffResult {
    let boards = boards.max(1);
    let mut sim = ShardedSim::new(shards, FLEET_EPOCH);
    for b in 0..boards {
        let seed = board_seed(cfg.seed, b);
        let mut host = host_config(cfg);
        host.failover = boards > 1;
        let mut world = ConcurrentJitsud::world(host, BoardKind::Cubieboard2.board(), seed);
        world.set_failover_hops(boards - 1);
        sim.add_domain(world, seed);
    }
    for b in 0..boards {
        for (at, name) in arrivals(cfg, board_seed(cfg.seed, b)) {
            jitsu::fleet::inject_query(&mut sim, DomainId(b), at, &name);
        }
    }
    sim.run();
    let events = sim.events_executed();
    let barriers = sim.barriers();
    let worlds = sim.into_worlds();
    FleetHandoffResult {
        failovers: worlds.iter().map(|w| w.metrics().failovers).sum(),
        failover_dropped: worlds.iter().map(|w| w.metrics().failover_dropped).sum(),
        boards: worlds.iter().map(|w| collect_cell(cfg, w)).collect(),
        events,
        barriers,
    }
}

/// Render a fleet run of the storm cell (`rate 24/s, 2 slots`) as a report
/// table: one row per board plus a `TOTAL` row. Deliberately *not* a
/// function of the shard count — the CI shard-invariance gate diffs this
/// output byte-for-byte across shard counts.
pub fn fleet_table(seed: u64, boards: u32, shards: u32) -> Table {
    let mut table = Table::new(
        "Handoff storm fleet: per-board live-flow migration with SERVFAIL fail-over around the board ring at 50 ms epoch barriers (Cubieboard2 x N)",
        &[
            "board",
            "queries",
            "launches",
            "migrated",
            "replayed",
            "completed",
            "dropped B",
            "dup B",
            "fo-sent",
            "fo-drop",
            "events",
            "barriers",
        ],
    );
    let cfg = HandoffStormConfig::cell(24.0, 2, seed);
    let r = run_fleet(&cfg, boards, shards);
    for (b, br) in r.boards.iter().enumerate() {
        table.add_row(&[
            b.to_string(),
            br.queries.to_string(),
            br.launches.to_string(),
            br.migrated.to_string(),
            br.replayed.to_string(),
            br.completed.to_string(),
            br.dropped_bytes.to_string(),
            br.duplicated_bytes.to_string(),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
        ]);
    }
    table.add_row(&[
        "TOTAL".to_string(),
        r.boards.iter().map(|b| b.queries).sum::<u64>().to_string(),
        r.boards.iter().map(|b| b.launches).sum::<u64>().to_string(),
        r.boards.iter().map(|b| b.migrated).sum::<u64>().to_string(),
        r.boards.iter().map(|b| b.replayed).sum::<u64>().to_string(),
        r.boards
            .iter()
            .map(|b| b.completed)
            .sum::<u64>()
            .to_string(),
        r.boards
            .iter()
            .map(|b| b.dropped_bytes)
            .sum::<u64>()
            .to_string(),
        r.boards
            .iter()
            .map(|b| b.duplicated_bytes)
            .sum::<u64>()
            .to_string(),
        r.failovers.to_string(),
        r.failover_dropped.to_string(),
        r.events.to_string(),
        r.barriers.to_string(),
    ]);
    table
}

/// The default sweep: arrival rate × launch slots.
pub fn default_sweep(seed: u64) -> Vec<HandoffStormConfig> {
    vec![
        HandoffStormConfig::cell(4.0, 1, seed),
        HandoffStormConfig::cell(12.0, 1, seed),
        HandoffStormConfig::cell(24.0, 1, seed),
        HandoffStormConfig::cell(12.0, 2, seed),
        HandoffStormConfig::cell(24.0, 2, seed),
        HandoffStormConfig::cell(24.0, 4, seed),
    ]
}

/// Render the sweep as the experiment's report table.
pub fn table(seed: u64) -> Table {
    let mut table = Table::new(
        "Handoff storm: live TCP flows migrated Synjitsu → unikernel mid-request (Cubieboard2, two-phase commit, conduit vchan drain)",
        &[
            "slots",
            "rate/s",
            "queries",
            "launches",
            "migrated",
            "prep-queued",
            "replayed",
            "completed",
            "dropped B",
            "dup B",
            "lat p50 ms",
            "lat p95 ms",
            "lat p99 ms",
        ],
    );
    for cfg in default_sweep(seed) {
        let r = run_cell(&cfg);
        table.add_row(&[
            r.launch_slots.to_string(),
            format!("{:.0}", r.rate_per_sec),
            r.queries.to_string(),
            r.launches.to_string(),
            r.migrated.to_string(),
            r.queued_prepare.to_string(),
            r.replayed.to_string(),
            r.completed.to_string(),
            r.dropped_bytes.to_string(),
            r.duplicated_bytes.to_string(),
            format!("{:.1}", r.p50_ms),
            format!("{:.1}", r.p95_ms),
            format!("{:.1}", r.p99_ms),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(rate: f64, slots: u32) -> HandoffStormConfig {
        HandoffStormConfig {
            services: 8,
            rate_per_sec: rate,
            launch_slots: slots,
            idle_ttl: SimDuration::from_secs(1),
            duration: SimDuration::from_secs(5),
            seed: 0x4A0D,
        }
    }

    #[test]
    fn no_bytes_are_dropped_or_duplicated_across_the_handoff() {
        let r = run_cell(&quick(12.0, 2));
        assert!(r.migrated > 0, "flows must actually cross the handoff");
        assert_eq!(r.dropped_bytes, 0, "zero-drop is the §3.3.1 guarantee");
        assert_eq!(r.duplicated_bytes, 0, "exactly-once per packet");
        assert_eq!(r.replayed, r.queued_prepare, "no parked frame is lost");
        assert!(r.completed >= r.migrated);
    }

    #[test]
    fn handoff_transactions_never_abort_under_storm() {
        // The two-phase handoff flips and boot registrations of different
        // services interleave freely in the store; the Jitsu merge commits
        // every one of them without an EAGAIN in sight.
        let r = run_cell(&quick(20.0, 4));
        assert_eq!(r.xs_conflicts, 0, "{r:?}");
        assert!(r.xs_merged > 0, "overlap must exercise the merge: {r:?}");
    }

    #[test]
    fn higher_rates_migrate_more_connections() {
        let light = run_cell(&quick(3.0, 1));
        let heavy = run_cell(&quick(20.0, 1));
        assert!(heavy.migrated > light.migrated);
        assert_eq!(light.dropped_bytes + heavy.dropped_bytes, 0);
        assert_eq!(light.duplicated_bytes + heavy.duplicated_bytes, 0);
    }

    #[test]
    fn same_seed_renders_byte_identical_tables() {
        let a = table(0x4A0D).render();
        let b = table(0x4A0D).render();
        assert_eq!(a, b, "the experiment is a pure function of its seed");
    }

    #[test]
    fn one_board_fleet_reproduces_the_classic_cell() {
        let cfg = quick(12.0, 2);
        let fleet = run_fleet(&cfg, 1, 1);
        assert_eq!(fleet.boards.len(), 1);
        assert_eq!(fleet.boards[0], run_cell(&cfg));
        assert_eq!(fleet.failovers, 0);
        assert_eq!(fleet.failover_dropped, 0);
    }

    #[test]
    fn fleet_tables_render_identically_at_any_shard_count() {
        let one = fleet_table(0x4A0D, 2, 1).render();
        for shards in [2, 4] {
            assert_eq!(
                fleet_table(0x4A0D, 2, shards).render(),
                one,
                "shards={shards}"
            );
        }
    }
}
