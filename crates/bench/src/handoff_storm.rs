//! The handoff-storm experiment: live-connection migration under load.
//!
//! §3.3.1's headline guarantee is that Synjitsu answers TCP on behalf of a
//! booting unikernel and then hands the *live* connections over through a
//! two-phase commit in XenStore, "ensuring only one of them ever handles
//! any given packet". The boot-storm experiment measures latency; this one
//! measures the data plane: every parked client runs a real `netstack`
//! TCP flow carrying an HTTP request, the booted unikernel drains the
//! proxied `Tcb`s over a conduit vchan, adopts them, replays the buffered
//! requests, and the harness checks each client's response stream
//! byte-for-byte against what the appliance serves. Any packet answered by
//! the wrong side of the handoff — or lost in the `Prepare` window — shows
//! up as a non-zero drop/dup count.
//!
//! The sweep crosses arrival rate with launch-slot capacity and reports,
//! per cell: connections migrated across the vchan drain, frames parked in
//! a `Prepare` window and replayed after `Committed`, byte-exact completed
//! exchanges, drop/dup byte counts (the zero columns *are* the result),
//! and the p50/p95/p99 client-observed request latency across the handoff.
//! Everything runs on the deterministic `jitsu_sim` engine: a fixed seed
//! reproduces the storm byte for byte.

use jitsu::concurrent::ConcurrentJitsud;
use jitsu::config::{JitsuConfig, ServiceConfig};
use jitsu_sim::{SimDuration, SimRng, SimTime, Table};
use netstack::ipv4::Ipv4Addr;
use platform::BoardKind;

/// One sweep cell: a handoff-storm configuration.
#[derive(Debug, Clone)]
pub struct HandoffStormConfig {
    /// Number of configured services (distinct DNS names).
    pub services: usize,
    /// Mean query arrival rate across all names, per second (Poisson).
    pub rate_per_sec: f64,
    /// Launch-slot semaphore capacity.
    pub launch_slots: u32,
    /// Idle TTL before a unikernel is reaped (short, so the run keeps
    /// relaunching and re-migrating).
    pub idle_ttl: SimDuration,
    /// Length of the arrival window (the sim then drains to quiescence).
    pub duration: SimDuration,
    /// RNG seed for the arrival process (and the engine).
    pub seed: u64,
}

impl HandoffStormConfig {
    /// A sweep cell: 16 light services with a 1 s idle TTL, so nearly
    /// every arrival parks on a boot and crosses the handoff.
    pub fn cell(rate_per_sec: f64, launch_slots: u32, seed: u64) -> HandoffStormConfig {
        HandoffStormConfig {
            services: 16,
            rate_per_sec,
            launch_slots,
            idle_ttl: SimDuration::from_secs(1),
            duration: SimDuration::from_secs(10),
            seed,
        }
    }
}

/// The measured outcome of one handoff-storm cell.
#[derive(Debug, Clone, PartialEq)]
pub struct HandoffStormResult {
    /// Launch slots.
    pub launch_slots: u32,
    /// Offered arrival rate, per second.
    pub rate_per_sec: f64,
    /// Queries that arrived inside the window.
    pub queries: u64,
    /// Domains constructed.
    pub launches: u64,
    /// Connections migrated from Synjitsu to a unikernel via the vchan drain.
    pub migrated: u64,
    /// Frames parked during a `Prepare` window.
    pub queued_prepare: u64,
    /// Parked frames replayed after `Committed`.
    pub replayed: u64,
    /// HTTP exchanges whose response stream reached the client byte-exact.
    pub completed: u64,
    /// Response bytes that never reached a client (must be zero).
    pub dropped_bytes: u64,
    /// Bytes duplicated into a client's stream (must be zero).
    pub duplicated_bytes: u64,
    /// Median request latency across the handoff, ms.
    pub p50_ms: f64,
    /// 95th-percentile request latency, ms.
    pub p95_ms: f64,
    /// 99th-percentile request latency, ms.
    pub p99_ms: f64,
    /// XenStore commits merged onto a concurrently advanced base (boot
    /// registrations and two-phase handoff flips overlapping under load).
    pub xs_merged: u64,
    /// XenStore `EAGAIN` aborts — zero on the Jitsu engine.
    pub xs_conflicts: u64,
}

/// Build the Jitsu host configuration for a cell.
fn host_config(cfg: &HandoffStormConfig) -> JitsuConfig {
    let mut host = JitsuConfig::new("handoff.example")
        .with_launch_slots(cfg.launch_slots)
        .with_idle_timeout(cfg.idle_ttl);
    for i in 0..cfg.services {
        let ip = Ipv4Addr::new(192, 168, 3, 20 + i as u8);
        let mut svc = ServiceConfig::http_site(&format!("svc{i:02}.handoff.example"), ip);
        svc.image.memory_mib = 16;
        host = host.with_service(svc);
    }
    host
}

/// Run one cell to quiescence and collect its handoff metrics.
pub fn run_cell(cfg: &HandoffStormConfig) -> HandoffStormResult {
    let board = BoardKind::Cubieboard2.board();
    let mut sim = ConcurrentJitsud::sim(host_config(cfg), board, cfg.seed);

    // Open-loop Poisson arrivals, uniformly spread across the services.
    let mut rng = SimRng::seed_from_u64(cfg.seed ^ 0x4A0D_0FF5);
    let mean_gap = 1.0 / cfg.rate_per_sec;
    let window = cfg.duration.as_secs_f64();
    let mut t = 0.0;
    loop {
        t += rng.exponential(mean_gap);
        if t >= window {
            break;
        }
        let service = rng.index(cfg.services);
        let name = format!("svc{service:02}.handoff.example");
        ConcurrentJitsud::inject_query(
            &mut sim,
            SimTime::ZERO + SimDuration::from_secs_f64(t),
            &name,
        );
    }
    sim.run();

    let xs = sim.world().xenstore_stats();
    let m = sim.world().metrics();
    let tail = m
        .handoff
        .request_latency
        .percentiles_ms(&[50.0, 95.0, 99.0]);
    HandoffStormResult {
        launch_slots: cfg.launch_slots,
        rate_per_sec: cfg.rate_per_sec,
        queries: m.queries,
        launches: m.launches,
        migrated: m.handoff.migrated,
        queued_prepare: m.handoff.queued_during_prepare,
        replayed: m.handoff.replayed_after_commit,
        completed: m.handoff.completed,
        dropped_bytes: m.handoff.dropped_bytes,
        duplicated_bytes: m.handoff.duplicated_bytes,
        p50_ms: tail[0],
        p95_ms: tail[1],
        p99_ms: tail[2],
        xs_merged: xs.merged,
        xs_conflicts: xs.conflicts,
    }
}

/// The default sweep: arrival rate × launch slots.
pub fn default_sweep(seed: u64) -> Vec<HandoffStormConfig> {
    vec![
        HandoffStormConfig::cell(4.0, 1, seed),
        HandoffStormConfig::cell(12.0, 1, seed),
        HandoffStormConfig::cell(24.0, 1, seed),
        HandoffStormConfig::cell(12.0, 2, seed),
        HandoffStormConfig::cell(24.0, 2, seed),
        HandoffStormConfig::cell(24.0, 4, seed),
    ]
}

/// Render the sweep as the experiment's report table.
pub fn table(seed: u64) -> Table {
    let mut table = Table::new(
        "Handoff storm: live TCP flows migrated Synjitsu → unikernel mid-request (Cubieboard2, two-phase commit, conduit vchan drain)",
        &[
            "slots",
            "rate/s",
            "queries",
            "launches",
            "migrated",
            "prep-queued",
            "replayed",
            "completed",
            "dropped B",
            "dup B",
            "lat p50 ms",
            "lat p95 ms",
            "lat p99 ms",
        ],
    );
    for cfg in default_sweep(seed) {
        let r = run_cell(&cfg);
        table.add_row(&[
            r.launch_slots.to_string(),
            format!("{:.0}", r.rate_per_sec),
            r.queries.to_string(),
            r.launches.to_string(),
            r.migrated.to_string(),
            r.queued_prepare.to_string(),
            r.replayed.to_string(),
            r.completed.to_string(),
            r.dropped_bytes.to_string(),
            r.duplicated_bytes.to_string(),
            format!("{:.1}", r.p50_ms),
            format!("{:.1}", r.p95_ms),
            format!("{:.1}", r.p99_ms),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(rate: f64, slots: u32) -> HandoffStormConfig {
        HandoffStormConfig {
            services: 8,
            rate_per_sec: rate,
            launch_slots: slots,
            idle_ttl: SimDuration::from_secs(1),
            duration: SimDuration::from_secs(5),
            seed: 0x4A0D,
        }
    }

    #[test]
    fn no_bytes_are_dropped_or_duplicated_across_the_handoff() {
        let r = run_cell(&quick(12.0, 2));
        assert!(r.migrated > 0, "flows must actually cross the handoff");
        assert_eq!(r.dropped_bytes, 0, "zero-drop is the §3.3.1 guarantee");
        assert_eq!(r.duplicated_bytes, 0, "exactly-once per packet");
        assert_eq!(r.replayed, r.queued_prepare, "no parked frame is lost");
        assert!(r.completed >= r.migrated);
    }

    #[test]
    fn handoff_transactions_never_abort_under_storm() {
        // The two-phase handoff flips and boot registrations of different
        // services interleave freely in the store; the Jitsu merge commits
        // every one of them without an EAGAIN in sight.
        let r = run_cell(&quick(20.0, 4));
        assert_eq!(r.xs_conflicts, 0, "{r:?}");
        assert!(r.xs_merged > 0, "overlap must exercise the merge: {r:?}");
    }

    #[test]
    fn higher_rates_migrate_more_connections() {
        let light = run_cell(&quick(3.0, 1));
        let heavy = run_cell(&quick(20.0, 1));
        assert!(heavy.migrated > light.migrated);
        assert_eq!(light.dropped_bytes + heavy.dropped_bytes, 0);
        assert_eq!(light.duplicated_bytes + heavy.duplicated_bytes, 0);
    }

    #[test]
    fn same_seed_renders_byte_identical_tables() {
        let a = table(0x4A0D).render();
        let b = table(0x4A0D).render();
        assert_eq!(a, b, "the experiment is a pure function of its seed");
    }
}
