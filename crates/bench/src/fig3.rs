//! Figure 3: parallel VM start/stop time under the three XenStore
//! transaction reconciliation engines.
//!
//! The workload launches `n` parallel VM start/stop sequences. Each sequence
//! performs seven toolstack transactions against the shared store (domain
//! home creation, device frontends/backends, console, teardown), and each
//! transaction is accompanied by a slug of domain-building CPU work that
//! must be *redone* if the commit conflicts ("the toolstack [cancels] and
//! [retries] a large set of domain building RPCs", §3.1). The store is
//! single-threaded, so store work serialises; toolstack work spreads across
//! the board's cores.
//!
//! The engines differ in which interleavings conflict — that decision is
//! made by the real [`xenstore`] engine implementations on a real store, not
//! assumed by the harness.

use jitsu_sim::{Figure, Series, SimDuration};
use platform::BoardKind;
use xenstore::{DomId, EngineKind, Error as XsError, XenStore};

/// Transactions per VM start/stop sequence.
const TXNS_PER_SEQUENCE: usize = 7;
/// XenStore operations per transaction.
const OPS_PER_TXN: usize = 8;
/// How many toolstack threads overlap their transactions at any instant.
const OVERLAP_GROUP: usize = 6;
/// CPU work accompanying each VM start/stop sequence (domain building,
/// device RPCs, hotplug) — redone in part when a commit conflicts.
const SEQUENCE_CPU: SimDuration = SimDuration::from_millis(1_200);
/// CPU work redone per conflicted commit.
const CONFLICT_REDO_CPU: SimDuration = SimDuration::from_millis(350);

/// The result of running the workload for one engine at one parallelism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fig3Point {
    /// Number of parallel VM start/stop sequences.
    pub parallel_sequences: usize,
    /// Total wall-clock time for all sequences to finish.
    pub total_time: SimDuration,
    /// Commits that conflicted and were retried.
    pub conflicts: u64,
    /// Commits that succeeded.
    pub commits: u64,
}

/// Run the parallel start/stop workload for one engine.
pub fn run_workload(engine: EngineKind, parallel_sequences: usize) -> Fig3Point {
    let mut xs = XenStore::new(engine);
    let cost = engine.cost_model();
    let board = BoardKind::Cubieboard2.board();
    let cores = board.cores as u64;

    // Remaining transactions per worker. Transaction index 0 is the
    // "create the domain home" transaction that creates a child under the
    // shared /local/domain directory; the rest touch only the worker's own
    // subtree.
    let mut remaining: Vec<usize> = vec![TXNS_PER_SEQUENCE; parallel_sequences];
    let mut store_busy = SimDuration::ZERO;
    let mut toolstack_cpu = SimDuration::ZERO;
    let mut conflicts = 0u64;
    let mut commits = 0u64;

    // Fixed per-sequence toolstack CPU work.
    toolstack_cpu += SEQUENCE_CPU * parallel_sequences as u64;

    while remaining.iter().any(|&r| r > 0) {
        // Workers with work left, processed in overlapping groups.
        let active: Vec<usize> = (0..parallel_sequences)
            .filter(|&i| remaining[i] > 0)
            .collect();
        for group in active.chunks(OVERLAP_GROUP) {
            // Everyone in the group opens a transaction and applies its ops
            // before anyone commits — the overlap that provokes conflicts.
            let mut open = Vec::new();
            for &worker in group {
                let txn_index = TXNS_PER_SEQUENCE - remaining[worker];
                let tx = xs.transaction_start(DomId::DOM0).expect("dom0 unlimited");
                store_busy += cost.txn_begin;
                for op in 0..OPS_PER_TXN {
                    let path = if txn_index == 0 {
                        // The conflict-prone creation under the shared parent.
                        format!("/local/domain/{}/op{}", 1000 + worker, op)
                    } else {
                        format!("/local/domain/{}/t{}/op{}", 1000 + worker, txn_index, op)
                    };
                    xs.write(DomId::DOM0, Some(tx), &path, b"v")
                        .expect("txn write");
                    store_busy += cost.op;
                }
                open.push((worker, tx));
            }
            for (worker, tx) in open {
                store_busy += cost.txn_commit;
                match xs.transaction_end(DomId::DOM0, tx, true) {
                    Ok(()) => {
                        commits += 1;
                        remaining[worker] -= 1;
                    }
                    Err(XsError::Again) => {
                        conflicts += 1;
                        store_busy += cost.conflict_penalty;
                        toolstack_cpu += CONFLICT_REDO_CPU;
                        // The worker retries the same transaction next round.
                    }
                    Err(e) => panic!("unexpected store error: {e}"),
                }
            }
        }
    }

    let total_time = store_busy + toolstack_cpu / cores;
    Fig3Point {
        parallel_sequences,
        total_time,
        conflicts,
        commits,
    }
}

/// The x-axis sweep used for the figure.
pub fn default_sweep() -> Vec<usize> {
    vec![1, 25, 50, 100, 150, 200]
}

/// Build Figure 3.
pub fn figure(sweep: &[usize]) -> Figure {
    let mut figure = Figure::new(
        "Figure 3: VM start/stop with parallel sequences",
        "Number of parallel VM sequences",
        "Time / seconds",
    );
    for engine in EngineKind::ALL {
        let mut series = Series::new(engine.label());
        for &n in sweep {
            let point = run_workload(engine, n);
            series.push(n as f64, point.total_time.as_secs_f64());
        }
        figure.add_series(series);
    }
    figure
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jitsu_engine_has_essentially_no_conflicts() {
        let p = run_workload(EngineKind::JitsuMerge, 24);
        assert_eq!(
            p.conflicts, 0,
            "sibling domain creations must merge cleanly"
        );
        assert_eq!(p.commits, (24 * TXNS_PER_SEQUENCE) as u64);
    }

    #[test]
    fn serial_engine_conflicts_heavily_under_parallel_load() {
        let serial = run_workload(EngineKind::Serial, 24);
        let merge = run_workload(EngineKind::Merge, 24);
        let jitsu = run_workload(EngineKind::JitsuMerge, 24);
        assert!(serial.conflicts > merge.conflicts);
        assert!(merge.conflicts > jitsu.conflicts);
        assert!(serial.total_time > merge.total_time);
        assert!(merge.total_time > jitsu.total_time);
    }

    #[test]
    fn single_sequence_never_conflicts() {
        for engine in EngineKind::ALL {
            let p = run_workload(engine, 1);
            assert_eq!(p.conflicts, 0, "{engine:?}");
        }
    }

    #[test]
    fn c_xenstored_grows_superlinearly_jitsu_linearly() {
        let c_small = run_workload(EngineKind::Serial, 10);
        let c_big = run_workload(EngineKind::Serial, 40);
        let j_small = run_workload(EngineKind::JitsuMerge, 10);
        let j_big = run_workload(EngineKind::JitsuMerge, 40);
        let c_ratio = c_big.total_time.as_secs_f64() / c_small.total_time.as_secs_f64();
        let j_ratio = j_big.total_time.as_secs_f64() / j_small.total_time.as_secs_f64();
        assert!(
            c_ratio > 4.5,
            "C xenstored must be superlinear, ratio={c_ratio:.2}"
        );
        assert!(
            j_ratio < 4.6,
            "Jitsu xenstored must stay near-linear, ratio={j_ratio:.2}"
        );
        assert!(c_ratio > j_ratio + 1.0);
    }

    #[test]
    fn figure_has_three_series_over_the_sweep() {
        let fig = figure(&[1, 10]);
        assert_eq!(fig.series().len(), 3);
        for s in fig.series() {
            assert_eq!(s.len(), 2);
            assert!(s.is_monotone_nondecreasing());
        }
    }
}
