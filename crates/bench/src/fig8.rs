//! Figure 8: ICMP round-trip time against payload size for the four
//! datapath targets (client's own stack, dom0, a Linux guest, a MirageOS
//! unikernel).
//!
//! The echo request and reply are built and parsed by the real
//! [`netstack`] code; the per-hop costs (client stack, wire, dom0 bridge,
//! netback/netfront ring crossing, guest stack) come from the calibrated
//! datapath model so the *relative* ordering and magnitudes match §4:
//! sub-millisecond RTTs, with the MirageOS guest within ~0.4 ms of the
//! Linux guest but slightly more variable.

use jitsu_sim::{Distribution, Figure, Series, SimDuration, SimRng};
use netstack::ethernet::MacAddr;
use netstack::iface::{IfaceEvent, Interface};
use netstack::ipv4::Ipv4Addr;
use platform::{Board, BoardKind};

/// The ping targets of Figure 8, in legend order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PingTarget {
    /// The client pinging its own external interface.
    Localhost,
    /// The Xen dom0.
    Dom0,
    /// A Linux guest VM behind the bridge.
    LinuxGuest,
    /// A MirageOS unikernel behind the bridge.
    MirageGuest,
}

impl PingTarget {
    /// All targets in legend order.
    pub const ALL: [PingTarget; 4] = [
        PingTarget::Localhost,
        PingTarget::Dom0,
        PingTarget::LinuxGuest,
        PingTarget::MirageGuest,
    ];

    /// Figure legend label.
    pub fn label(self) -> &'static str {
        match self {
            PingTarget::Localhost => "localhost",
            PingTarget::Dom0 => "dom0",
            PingTarget::LinuxGuest => "linux",
            PingTarget::MirageGuest => "mirage",
        }
    }
}

/// Per-hop latency model of the ping datapath.
#[derive(Debug, Clone)]
pub struct DatapathModel {
    board: Board,
    /// Per-byte copy cost through a software stack.
    per_byte: SimDuration,
    client_stack: Distribution,
    dom0_stack: Distribution,
    linux_guest_stack: Distribution,
    mirage_guest_stack: Distribution,
    ring_crossing: Distribution,
    bridge_hop: SimDuration,
}

impl DatapathModel {
    /// The calibrated model for a board.
    pub fn new(kind: BoardKind) -> DatapathModel {
        let board = kind.board();
        let scale = |us: f64| board.scale_cpu(SimDuration::from_micros_f64(us));
        DatapathModel {
            per_byte: board.scale_cpu(SimDuration::from_nanos(10)),
            client_stack: Distribution::Normal {
                mean: scale(12.0),
                std_dev: scale(1.5),
            },
            dom0_stack: Distribution::Normal {
                mean: scale(14.0),
                std_dev: scale(2.0),
            },
            linux_guest_stack: Distribution::Normal {
                mean: scale(16.0),
                std_dev: scale(2.5),
            },
            // The MirageOS stack costs about the same on average but shows
            // slightly more variation (§4: "never more than 0.4ms" apart,
            // "slightly more variation").
            mirage_guest_stack: Distribution::Normal {
                mean: scale(20.0),
                std_dev: scale(6.0),
            },
            ring_crossing: Distribution::Normal {
                mean: scale(9.0),
                std_dev: scale(1.5),
            },
            bridge_hop: board.scale_cpu(SimDuration::from_micros(8)),
            board,
        }
    }

    /// One-way latency to the target for a frame of `bytes` bytes.
    fn one_way(&self, target: PingTarget, bytes: usize, rng: &mut SimRng) -> SimDuration {
        let copy = self.per_byte * bytes as u64;
        let wire = self.board.wire_time(bytes);
        match target {
            PingTarget::Localhost => self.client_stack.sample(rng) + copy,
            PingTarget::Dom0 => {
                self.client_stack.sample(rng) + wire + self.dom0_stack.sample(rng) + copy
            }
            PingTarget::LinuxGuest => {
                self.client_stack.sample(rng)
                    + wire
                    + self.bridge_hop
                    + self.ring_crossing.sample(rng)
                    + self.linux_guest_stack.sample(rng)
                    + copy * 2
            }
            PingTarget::MirageGuest => {
                self.client_stack.sample(rng)
                    + wire
                    + self.bridge_hop
                    + self.ring_crossing.sample(rng)
                    + self.mirage_guest_stack.sample(rng)
                    + copy * 2
            }
        }
    }

    /// One ICMP echo RTT: the request and reply really are built, parsed and
    /// answered by `netstack`; the time is the two one-way traversals.
    pub fn rtt(
        &self,
        target: PingTarget,
        payload: usize,
        seq: u16,
        rng: &mut SimRng,
    ) -> SimDuration {
        let client_ip = Ipv4Addr::new(192, 168, 1, 100);
        let target_ip = Ipv4Addr::new(192, 168, 1, 20);
        let mut client = Interface::new(MacAddr([2, 0, 0, 0, 0, 1]), client_ip);
        let mut responder = Interface::new(MacAddr([2, 0, 0, 0, 0, 2]), target_ip);
        client.add_arp_entry(target_ip, MacAddr([2, 0, 0, 0, 0, 2]));
        let request = client.icmp_echo_request(target_ip, 7, seq, payload);
        let frame_len = request.len();
        let (replies, _) = responder.handle_frame(&request);
        assert_eq!(replies.len(), 1, "echo request must be answered");
        let (_, events) = client.handle_frame(&replies[0]);
        assert!(
            events
                .iter()
                .any(|e| matches!(e, IfaceEvent::IcmpEchoReply { seq: s, .. } if *s == seq)),
            "client must see the echo reply"
        );
        self.one_way(target, frame_len, rng) + self.one_way(target, frame_len, rng)
    }
}

/// Payload sizes of the figure's x axis.
pub const PAYLOAD_SWEEP: [usize; 5] = [56, 128, 512, 1024, 1400];

/// Mean RTT in milliseconds for a target and payload over `samples` pings.
pub fn mean_rtt_ms(
    model: &DatapathModel,
    target: PingTarget,
    payload: usize,
    samples: usize,
    rng: &mut SimRng,
) -> f64 {
    let mut total = SimDuration::ZERO;
    for i in 0..samples.max(1) {
        total += model.rtt(target, payload, i as u16, rng);
    }
    (total / samples.max(1) as u64).as_millis_f64()
}

/// Build Figure 8.
pub fn figure(samples: usize, seed: u64) -> Figure {
    let model = DatapathModel::new(BoardKind::Cubieboard2);
    let mut rng = SimRng::seed_from_u64(seed);
    let mut figure = Figure::new(
        "Figure 8: ICMP RTT showing the datapath latency",
        "Payload size in bytes",
        "ICMP RTT in milliseconds",
    );
    for target in PingTarget::ALL {
        let mut series = Series::new(target.label());
        for payload in PAYLOAD_SWEEP {
            series.push(
                payload as f64,
                mean_rtt_ms(&model, target, payload, samples, &mut rng),
            );
        }
        figure.add_series(series);
    }
    figure
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> DatapathModel {
        DatapathModel::new(BoardKind::Cubieboard2)
    }

    #[test]
    fn rtts_are_sub_millisecond_for_small_payloads() {
        let m = model();
        let mut rng = SimRng::seed_from_u64(1);
        for target in PingTarget::ALL {
            let rtt = mean_rtt_ms(&m, target, 56, 20, &mut rng);
            assert!(rtt < 1.0, "{target:?} RTT {rtt:.3} ms");
            assert!(rtt > 0.05, "{target:?} RTT {rtt:.3} ms");
        }
    }

    #[test]
    fn ordering_localhost_fastest_guests_slowest() {
        let m = model();
        let mut rng = SimRng::seed_from_u64(2);
        let local = mean_rtt_ms(&m, PingTarget::Localhost, 512, 50, &mut rng);
        let dom0 = mean_rtt_ms(&m, PingTarget::Dom0, 512, 50, &mut rng);
        let linux = mean_rtt_ms(&m, PingTarget::LinuxGuest, 512, 50, &mut rng);
        let mirage = mean_rtt_ms(&m, PingTarget::MirageGuest, 512, 50, &mut rng);
        assert!(local < dom0);
        assert!(dom0 < linux);
        assert!(dom0 < mirage);
    }

    #[test]
    fn mirage_within_0_4ms_of_linux_but_more_variable() {
        let m = model();
        let mut rng = SimRng::seed_from_u64(3);
        for payload in PAYLOAD_SWEEP {
            let linux = mean_rtt_ms(&m, PingTarget::LinuxGuest, payload, 60, &mut rng);
            let mirage = mean_rtt_ms(&m, PingTarget::MirageGuest, payload, 60, &mut rng);
            assert!(
                (mirage - linux).abs() < 0.4,
                "payload {payload}: linux {linux:.3} vs mirage {mirage:.3}"
            );
        }
        // Variance comparison on individual samples.
        let mut linux_samples = Vec::new();
        let mut mirage_samples = Vec::new();
        for i in 0..200u16 {
            linux_samples.push(
                m.rtt(PingTarget::LinuxGuest, 512, i, &mut rng)
                    .as_millis_f64(),
            );
            mirage_samples.push(
                m.rtt(PingTarget::MirageGuest, 512, i, &mut rng)
                    .as_millis_f64(),
            );
        }
        let var = |v: &[f64]| {
            let mean = v.iter().sum::<f64>() / v.len() as f64;
            v.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / v.len() as f64
        };
        assert!(var(&mirage_samples) > var(&linux_samples));
    }

    #[test]
    fn rtt_grows_with_payload() {
        let fig = figure(20, 9);
        assert_eq!(fig.series().len(), 4);
        for series in fig.series() {
            assert!(series.is_monotone_nondecreasing(), "{}", series.label);
        }
    }
}
