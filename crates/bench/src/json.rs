//! A minimal JSON document model for the `bench_snapshot` harness.
//!
//! The workspace has no crates.io access, so the snapshot files
//! (`BENCH_<date>.json`, `BENCH_BASELINE.json`) are written and re-read by
//! this tiny self-contained value model: objects keep their keys in a
//! `BTreeMap` so serialization is deterministic, numbers round-trip through
//! Rust's shortest-representation `f64` formatting, and the parser is a
//! plain recursive-descent reader that reports the byte offset of the first
//! error. It intentionally supports exactly the JSON the harness emits —
//! no comments, no trailing commas, no non-finite numbers.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (JSON has no NaN/Inf; serializing one panics the
    /// harness early rather than emitting an unparseable document).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; `BTreeMap` keeps key order deterministic.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Shorthand for building a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// The value as an object, if it is one.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Member lookup on an object (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj().and_then(|m| m.get(key))
    }

    /// Serialize with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => {
                assert!(n.is_finite(), "JSON cannot carry {n}");
                // `{:?}` prints the shortest string that re-parses to the
                // same f64, so values are bit-comparable across a
                // write → parse → write round trip.
                let _ = write!(out, "{n:?}");
            }
            Value::Str(s) => render_string(s, out),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.render_into(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Value::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, val)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    render_string(key, out);
                    out.push_str(": ");
                    val.render_into(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document. Errors carry the byte offset of the failure.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", char::from(b), *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("expected `{word}` at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| format!("invalid utf-8 in number at byte {start}"))?;
    let n: f64 = text
        .parse()
        .map_err(|_| format!("invalid number `{text}` at byte {start}"))?;
    if !n.is_finite() {
        return Err(format!("non-finite number `{text}` at byte {start}"));
    }
    Ok(Value::Num(n))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| "invalid \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("invalid \\u escape `{hex}`"))?;
                        // Surrogates never appear in harness output; reject.
                        let c = char::from_u32(code)
                            .ok_or_else(|| format!("unpaired surrogate \\u{hex}"))?;
                        out.push(c);
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?} at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so byte
                // boundaries are trustworthy).
                let rest = &bytes[*pos..];
                let s = std::str::from_utf8(rest)
                    .map_err(|_| format!("invalid utf-8 at byte {}", *pos))?;
                let c = s.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'{')?;
    let mut members = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(members));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_document() {
        let mut obj = BTreeMap::new();
        obj.insert("name".to_string(), Value::str("vchan/streamed_bytes"));
        obj.insert("value".to_string(), Value::Num(262144.0));
        obj.insert("dispersion".to_string(), Value::Num(0.0375));
        obj.insert("exact".to_string(), Value::Bool(true));
        obj.insert(
            "tags".to_string(),
            Value::Arr(vec![Value::str("wall"), Value::Null]),
        );
        let doc = Value::Obj(obj);
        let text = doc.render();
        let back = parse(&text).expect("round trip parses");
        assert_eq!(back, doc);
        // Deterministic: rendering the parsed document is byte-identical.
        assert_eq!(back.render(), text);
    }

    #[test]
    fn numbers_round_trip_bit_exact() {
        for n in [
            0.0,
            -0.0,
            1.5,
            0.1,
            1e-9,
            123456789.123456,
            9.007199254740991e15,
        ] {
            let text = Value::Num(n).render();
            let back = parse(&text).expect("parses");
            assert_eq!(back.as_num().unwrap().to_bits(), n.to_bits(), "{text}");
        }
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "a \"quoted\"\\path\nline\ttab \u{1} unicode \u{263a}";
        let text = Value::str(s).render();
        assert_eq!(parse(&text).unwrap().as_str().unwrap(), s);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "tru",
            "1.2.3",
            "\"unterminated",
            "{} trailing",
            "[1e400]",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn accessors_navigate_the_tree() {
        let doc = parse(r#"{"metrics": [{"value": 4}], "sha": "abc"}"#).unwrap();
        assert_eq!(doc.get("sha").and_then(Value::as_str), Some("abc"));
        let metrics = doc.get("metrics").and_then(Value::as_arr).unwrap();
        assert_eq!(metrics[0].get("value").and_then(Value::as_num), Some(4.0));
        assert!(doc.get("missing").is_none());
        assert!(Value::Null.get("x").is_none());
    }
}
