//! The `bench_snapshot` harness: the repository's performance trajectory as
//! a first-class, machine-readable artifact.
//!
//! Seven PRs of "measurably faster" claims are worth nothing without
//! recorded numbers. This module runs the hot-path suite — XenStore
//! commit/merge throughput, O(1) snapshot scaling at 10²..10⁵ nodes, vchan
//! bytes/sec through [`conduit::vchan::VchanPair::stream`], the full TCB
//! handoff under storm, an end-to-end cold start, and raw
//! [`jitsu_sim::Sim`] dispatch throughput — and emits a schema-versioned
//! snapshot that `--compare` can hold against the committed
//! `BENCH_BASELINE.json`.
//!
//! Two metric kinds with two comparison disciplines:
//!
//! * **virtual** metrics are counts and virtual-time latencies read from
//!   the deterministic sim (events executed, commits merged, bytes through
//!   the ring, p50 handoff latency in sim-milliseconds). They are exact —
//!   `jitsu-lint` guarantees no wall clock, ambient entropy or unordered
//!   iteration can leak into these paths — so *any* drift against the
//!   baseline fails the gate: a virtual metric only moves when an
//!   intentional algorithmic change moves it.
//! * **wall** metrics are best-of-N timings of the same workloads. Wall
//!   time lives only in the root `src/bin/bench_snapshot` binary (outside
//!   the `crates/` D002 fence); this module takes an abstract
//!   [`WallTimer`] so nothing under `crates/` ever reads the host clock.
//!   Wall comparisons tolerate a configurable percentage before declaring
//!   a regression.

use crate::json::Value;
use crate::{handoff_storm, xenstore_storm};
use conduit::vchan::{Side, VchanPair};
use jitsu::config::{JitsuConfig, ServiceConfig};
use jitsu::jitsud::Jitsud;
use jitsu_sim::shard::{Domain, DomainCtx};
use jitsu_sim::{DomainId, Scheduler, ShardedSim, Sim, SimDuration, SimTime};
use netstack::http::{HttpRequest, HttpResponse};
use netstack::iface::{IfaceEvent, Interface};
use netstack::ipv4::Ipv4Addr;
use netstack::{FrameBuf, MacAddr};
use platform::BoardKind;
use std::collections::BTreeMap;
use unikernel::appliance::StaticSiteAppliance;
use unikernel::image::UnikernelImage;
use unikernel::instance::UnikernelInstance;
use xen_sim::event_channel::EventChannelTable;
use xen_sim::grant_table::GrantTable;
use xenstore::{DomId, EngineKind, Path, Tree};

/// Version of the `BENCH_<date>.json` schema this build writes and reads.
pub const SCHEMA_VERSION: u64 = 1;

/// Default wall-time regression tolerance for `--compare`, in percent.
pub const DEFAULT_WALL_TOLERANCE_PCT: f64 = 10.0;

/// Source of wall-clock measurements.
///
/// The only implementation that reads a real clock lives in
/// `src/bin/bench_snapshot.rs`; inside `crates/` (tests, determinism
/// checks) [`NullTimer`] runs the workload and reports zero, which zeroes
/// every wall metric while leaving the virtual section untouched.
pub trait WallTimer {
    /// Run `work` once and return the elapsed wall time in seconds.
    fn time(&self, work: &mut dyn FnMut()) -> f64;
}

/// A [`WallTimer`] that executes the workload but reports zero elapsed
/// time — the in-fence stand-in used by tests.
pub struct NullTimer;

impl WallTimer for NullTimer {
    fn time(&self, work: &mut dyn FnMut()) -> f64 {
        work();
        0.0
    }
}

/// Whether a metric is exact (virtual time) or measured (wall time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Deterministic: identical on every run of the same tree. Any change
    /// against the baseline is drift and fails the gate.
    Virtual,
    /// Best-of-N wall timing; compared within a tolerance.
    Wall,
}

/// Which way a wall metric is allowed to move before it counts as a
/// regression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Virtual metrics: compared for exact equality.
    Exact,
    /// Durations: growing past tolerance is a regression.
    LowerIsBetter,
    /// Throughputs: shrinking past tolerance is a regression.
    HigherIsBetter,
}

impl Direction {
    fn label(self) -> &'static str {
        match self {
            Direction::Exact => "exact",
            Direction::LowerIsBetter => "lower_is_better",
            Direction::HigherIsBetter => "higher_is_better",
        }
    }

    fn from_label(s: &str) -> Result<Direction, String> {
        match s {
            "exact" => Ok(Direction::Exact),
            "lower_is_better" => Ok(Direction::LowerIsBetter),
            "higher_is_better" => Ok(Direction::HigherIsBetter),
            other => Err(format!("unknown direction `{other}`")),
        }
    }
}

/// One measured quantity.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Suite the metric belongs to (`sim_engine`, `xenstore_commit`, …).
    pub suite: String,
    /// Metric name, unique within its suite.
    pub name: String,
    /// Unit label (`events/s`, `commits`, `ms`, …).
    pub unit: String,
    /// Exact (virtual) or measured (wall).
    pub kind: MetricKind,
    /// Comparison direction.
    pub direction: Direction,
    /// The value: exact for virtual metrics, best-of-N for wall metrics.
    pub value: f64,
    /// Runs behind the value (1 for virtual metrics, N for best-of-N).
    pub iterations: u64,
    /// Relative spread `(worst − best) / best` across the wall runs; 0 for
    /// virtual metrics.
    pub dispersion: f64,
}

impl Metric {
    /// The `suite/name` key used for lookups and reports.
    pub fn key(&self) -> String {
        format!("{}/{}", self.suite, self.name)
    }

    fn virt(suite: &str, name: &str, unit: &str, value: f64) -> Metric {
        Metric {
            suite: suite.to_string(),
            name: name.to_string(),
            unit: unit.to_string(),
            kind: MetricKind::Virtual,
            direction: Direction::Exact,
            value,
            iterations: 1,
            dispersion: 0.0,
        }
    }

    fn wall(
        suite: &str,
        name: &str,
        unit: &str,
        direction: Direction,
        value: f64,
        iterations: u64,
        dispersion: f64,
    ) -> Metric {
        Metric {
            suite: suite.to_string(),
            name: name.to_string(),
            unit: unit.to_string(),
            kind: MetricKind::Wall,
            direction,
            value,
            iterations,
            dispersion,
        }
    }

    fn to_value(&self) -> Value {
        let mut obj = BTreeMap::new();
        obj.insert("suite".to_string(), Value::str(&self.suite));
        obj.insert("name".to_string(), Value::str(&self.name));
        obj.insert("unit".to_string(), Value::str(&self.unit));
        obj.insert(
            "kind".to_string(),
            Value::str(match self.kind {
                MetricKind::Virtual => "virtual",
                MetricKind::Wall => "wall",
            }),
        );
        obj.insert("direction".to_string(), Value::str(self.direction.label()));
        obj.insert("value".to_string(), Value::Num(self.value));
        obj.insert("iterations".to_string(), Value::Num(self.iterations as f64));
        obj.insert("dispersion".to_string(), Value::Num(self.dispersion));
        Value::Obj(obj)
    }

    fn from_value(v: &Value) -> Result<Metric, String> {
        let str_field = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("metric missing string field `{key}`"))
        };
        let num_field = |key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(Value::as_num)
                .ok_or_else(|| format!("metric missing numeric field `{key}`"))
        };
        let kind = match str_field("kind")?.as_str() {
            "virtual" => MetricKind::Virtual,
            "wall" => MetricKind::Wall,
            other => return Err(format!("unknown metric kind `{other}`")),
        };
        Ok(Metric {
            suite: str_field("suite")?,
            name: str_field("name")?,
            unit: str_field("unit")?,
            kind,
            direction: Direction::from_label(&str_field("direction")?)?,
            value: num_field("value")?,
            iterations: num_field("iterations")? as u64,
            dispersion: num_field("dispersion")?,
        })
    }
}

/// Knobs for one harness run. [`BenchConfig::default`] is what the binary
/// and the committed baseline use; [`BenchConfig::quick`] shrinks the
/// workloads for in-fence tests.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Seed threaded through every seeded workload.
    pub seed: u64,
    /// Wall repetitions per metric (best-of-N).
    pub wall_reps: u32,
    /// Events pushed through the raw engine for the events/sec suite.
    pub sim_events: u64,
    /// Payload size driven through the vchan stream, in bytes.
    pub vchan_bytes: usize,
    /// Store sizes (leaf keys) for the snapshot-scaling suite.
    pub snapshot_sizes: Vec<usize>,
    /// Snapshots taken per wall repetition in the scaling suite.
    pub snapshot_clones: u64,
    /// HTTP exchanges driven through the end-to-end frame-path suite.
    pub frame_path_requests: u64,
    /// Domains in the sharded-engine suite's ring workload.
    pub sharded_domains: u32,
    /// Ring messages each domain originates in the sharded-engine suite.
    pub sharded_messages: u64,
    /// Hops each ring message makes before it dies (its barrier count).
    pub sharded_ttl: u64,
}

impl Default for BenchConfig {
    fn default() -> BenchConfig {
        BenchConfig {
            seed: 0xBE7C_5EED,
            wall_reps: 5,
            sim_events: 100_000,
            vchan_bytes: 256 * 1024,
            // The paper claim under test: snapshot cost is O(1) from 10²
            // to 10⁵ nodes.
            snapshot_sizes: vec![100, 1_000, 10_000, 100_000],
            snapshot_clones: 10_000,
            frame_path_requests: 32,
            sharded_domains: 32,
            sharded_messages: 64,
            sharded_ttl: 16,
        }
    }
}

impl BenchConfig {
    /// A reduced configuration for tests: same suites, same metric names
    /// where sizes are not part of the name, smaller workloads.
    pub fn quick() -> BenchConfig {
        BenchConfig {
            seed: 0xBE7C_5EED,
            wall_reps: 1,
            sim_events: 5_000,
            vchan_bytes: 32 * 1024,
            snapshot_sizes: vec![100, 1_000],
            snapshot_clones: 100,
            frame_path_requests: 4,
            sharded_domains: 6,
            sharded_messages: 8,
            sharded_ttl: 4,
        }
    }
}

/// A complete snapshot document.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Schema version ([`SCHEMA_VERSION`] for documents this build writes).
    pub schema_version: u64,
    /// `git rev-parse HEAD` of the measured tree (or `unknown`).
    pub git_sha: String,
    /// ISO date the snapshot was taken (supplied by the binary; the crates
    /// cannot read a calendar).
    pub date: String,
    /// Every collected metric, in collection order.
    pub metrics: Vec<Metric>,
}

impl Snapshot {
    /// Serialize to the `BENCH_<date>.json` document.
    pub fn to_json(&self) -> String {
        let mut obj = BTreeMap::new();
        obj.insert(
            "schema_version".to_string(),
            Value::Num(self.schema_version as f64),
        );
        obj.insert("tool".to_string(), Value::str("bench_snapshot"));
        obj.insert("git_sha".to_string(), Value::str(&self.git_sha));
        obj.insert("date".to_string(), Value::str(&self.date));
        obj.insert(
            "metrics".to_string(),
            Value::Arr(self.metrics.iter().map(Metric::to_value).collect()),
        );
        Value::Obj(obj).render()
    }

    /// Parse a snapshot document.
    pub fn from_json(text: &str) -> Result<Snapshot, String> {
        let doc = crate::json::parse(text)?;
        let schema_version = doc
            .get("schema_version")
            .and_then(Value::as_num)
            .ok_or("document missing `schema_version`")? as u64;
        let git_sha = doc
            .get("git_sha")
            .and_then(Value::as_str)
            .unwrap_or("unknown")
            .to_string();
        let date = doc
            .get("date")
            .and_then(Value::as_str)
            .unwrap_or("unknown")
            .to_string();
        let metrics = doc
            .get("metrics")
            .and_then(Value::as_arr)
            .ok_or("document missing `metrics` array")?
            .iter()
            .map(Metric::from_value)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Snapshot {
            schema_version,
            git_sha,
            date,
            metrics,
        })
    }

    /// Render only the virtual metrics, one `suite/name unit = value` line
    /// each — the bit-comparable section two runs of the same tree must
    /// reproduce byte for byte.
    pub fn virtual_section(&self) -> String {
        let mut out = String::new();
        for m in self
            .metrics
            .iter()
            .filter(|m| m.kind == MetricKind::Virtual)
        {
            out.push_str(&format!("{} {} = {:?}\n", m.key(), m.unit, m.value));
        }
        out
    }
}

/// Best-of-N measurement: returns `(best seconds, relative spread)`.
fn measure(timer: &dyn WallTimer, reps: u32, mut work: impl FnMut()) -> (f64, f64) {
    let mut best = f64::INFINITY;
    let mut worst = 0.0f64;
    for _ in 0..reps.max(1) {
        let secs = timer.time(&mut work);
        best = best.min(secs);
        worst = worst.max(secs);
    }
    if best.is_finite() && best > 0.0 {
        (best, (worst - best) / best)
    } else {
        (0.0, 0.0)
    }
}

/// `work / secs`, or 0.0 when no wall time was observed (NullTimer).
fn rate(work: f64, secs: f64) -> f64 {
    if secs > 0.0 {
        work / secs
    } else {
        0.0
    }
}

/// Run every suite and return the metrics in deterministic order.
pub fn collect(timer: &dyn WallTimer, cfg: &BenchConfig) -> Vec<Metric> {
    let mut out = Vec::new();
    suite_sim_engine(timer, cfg, &mut out);
    suite_sharded_engine(timer, cfg, &mut out);
    suite_xenstore_commit(timer, cfg, &mut out);
    suite_xenstore_snapshot(timer, cfg, &mut out);
    suite_vchan(timer, cfg, &mut out);
    suite_frame_path(timer, cfg, &mut out);
    suite_handoff(timer, cfg, &mut out);
    suite_cold_start(timer, cfg, &mut out);
    out
}

/// Raw dispatch throughput of the discrete-event engine.
fn suite_sim_engine(timer: &dyn WallTimer, cfg: &BenchConfig, out: &mut Vec<Metric>) {
    const SUITE: &str = "sim_engine";
    let events = cfg.sim_events;
    let run = || {
        let mut sim = Sim::new(0u64);
        for i in 0..events {
            sim.schedule_at(SimTime::from_micros(i), |s| *s.world_mut() += 1);
        }
        sim.run_steps(events)
    };
    let executed = run();
    out.push(Metric::virt(
        SUITE,
        "events_executed",
        "events",
        executed as f64,
    ));
    let (secs, disp) = measure(timer, cfg.wall_reps, || {
        run();
    });
    out.push(Metric::wall(
        SUITE,
        "events_per_sec",
        "events/s",
        Direction::HigherIsBetter,
        rate(events as f64, secs),
        cfg.wall_reps as u64,
        disp,
    ));
}

/// One domain of the sharded-engine benchmark workload: a ring of domains
/// exchanging TTL'd messages. Every hop draws from the domain RNG and
/// folds the draw into an FNV-style checksum, so the `checksum` metric
/// pins the exact event schedule *and* the exact RNG streams — any
/// engine change that reorders events or draws shows up as virtual drift.
struct RingDomain {
    hops: u64,
    checksum: u64,
}

impl Domain for RingDomain {
    type Msg = u64;

    fn on_message(ctx: &mut DomainCtx<RingDomain>, ttl: u64) {
        let draw = ctx.rng().uniform_u64(0, 1 << 20);
        let w = ctx.world_mut();
        w.hops += 1;
        w.checksum = w.checksum.wrapping_mul(0x0000_0100_0000_01B3) ^ draw;
        if ttl > 0 {
            let next = DomainId((ctx.id().0 + 1) % ctx.domain_count());
            ctx.send(next, ttl - 1);
        }
    }
}

/// Run the ring workload at `shards` shards, returning
/// `(events, barriers, checksum)` — all three invariant in `shards`.
fn run_ring(cfg: &BenchConfig, shards: u32) -> (u64, u64, u64) {
    let mut sim = ShardedSim::new(shards, SimDuration::from_millis(1));
    let domains: Vec<DomainId> = (0..cfg.sharded_domains)
        .map(|d| {
            sim.add_domain(
                RingDomain {
                    hops: 0,
                    checksum: 0xCBF2_9CE4_8422_2325,
                },
                cfg.seed ^ u64::from(d),
            )
        })
        .collect();
    for (d, id) in domains.iter().enumerate() {
        for m in 0..cfg.sharded_messages {
            let at = SimTime::from_micros(1 + m * 37 + d as u64);
            let ttl = cfg.sharded_ttl;
            sim.schedule_at(*id, at, move |ctx| {
                RingDomain::on_message(ctx, ttl);
            });
        }
    }
    sim.run();
    let events = sim.events_executed();
    let barriers = sim.barriers();
    let checksum = sim
        .into_worlds()
        .iter()
        .fold(0u64, |acc, w| acc.rotate_left(7) ^ w.checksum);
    (events, barriers, checksum)
}

/// The sharded engine under a cross-domain ring workload, at 1, 4 and 16
/// shards. The virtual metrics (events, barriers, checksum) must be
/// *identical across the three shard counts* — the baseline records the
/// invariance itself, so any scheduling divergence between shard counts is
/// drift. The wall metrics track dispatch throughput per shard count.
fn suite_sharded_engine(timer: &dyn WallTimer, cfg: &BenchConfig, out: &mut Vec<Metric>) {
    const SUITE: &str = "sharded_engine";
    for shards in [1u32, 4, 16] {
        let (events, barriers, checksum) = run_ring(cfg, shards);
        out.push(Metric::virt(
            SUITE,
            &format!("events@{shards}"),
            "events",
            events as f64,
        ));
        out.push(Metric::virt(
            SUITE,
            &format!("barriers@{shards}"),
            "barriers",
            barriers as f64,
        ));
        // Masked to 48 bits so the checksum survives the f64 metric
        // representation without rounding.
        out.push(Metric::virt(
            SUITE,
            &format!("checksum@{shards}"),
            "fold",
            (checksum & 0xFFFF_FFFF_FFFF) as f64,
        ));
        let (secs, disp) = measure(timer, cfg.wall_reps, || {
            run_ring(cfg, shards);
        });
        out.push(Metric::wall(
            SUITE,
            &format!("events_per_sec@{shards}"),
            "events/s",
            Direction::HigherIsBetter,
            rate(events as f64, secs),
            cfg.wall_reps as u64,
            disp,
        ));
    }
}

/// XenStore commit/merge throughput on the Jitsu merge engine: the
/// overlapping-transaction storm cell from the xenstore_storm experiment.
fn suite_xenstore_commit(timer: &dyn WallTimer, cfg: &BenchConfig, out: &mut Vec<Metric>) {
    const SUITE: &str = "xenstore_commit";
    let cell = xenstore_storm::XsStormConfig {
        engine: EngineKind::JitsuMerge,
        writers: 8,
        txns_per_writer: 8,
        ops_per_txn: 6,
        prepopulated: 2_000,
        seed: cfg.seed,
    };
    let r = xenstore_storm::run_cell(&cell);
    out.push(Metric::virt(SUITE, "commits", "commits", r.commits as f64));
    out.push(Metric::virt(SUITE, "merged", "commits", r.merged as f64));
    out.push(Metric::virt(
        SUITE,
        "eagain_conflicts",
        "aborts",
        r.conflicts as f64,
    ));
    out.push(Metric::virt(
        SUITE,
        "merge_rate",
        "fraction",
        r.merge_rate(),
    ));
    let (secs, disp) = measure(timer, cfg.wall_reps, || {
        xenstore_storm::run_cell(&cell);
    });
    out.push(Metric::wall(
        SUITE,
        "commits_per_sec",
        "commits/s",
        Direction::HigherIsBetter,
        rate(r.commits as f64, secs),
        cfg.wall_reps as u64,
        disp,
    ));
}

/// O(1) snapshot scaling: nodes copied per snapshot and per first write at
/// each store size, plus snapshot throughput at the largest size.
fn suite_xenstore_snapshot(timer: &dyn WallTimer, cfg: &BenchConfig, out: &mut Vec<Metric>) {
    const SUITE: &str = "xenstore_snapshot";
    for &keys in &cfg.snapshot_sizes {
        let p = xenstore_storm::snapshot_point(keys);
        out.push(Metric::virt(
            SUITE,
            &format!("store_nodes@{keys}"),
            "nodes",
            p.store_nodes as f64,
        ));
        out.push(Metric::virt(
            SUITE,
            &format!("copied_by_snapshot@{keys}"),
            "nodes",
            p.copied_by_snapshot as f64,
        ));
        out.push(Metric::virt(
            SUITE,
            &format!("copied_by_one_write@{keys}"),
            "nodes",
            p.copied_by_one_write as f64,
        ));
    }
    // Wall: take snapshots of the largest store; O(1) means this rate is
    // independent of the size used here.
    let largest = cfg.snapshot_sizes.iter().copied().max().unwrap_or(100);
    let mut tree = Tree::new();
    for i in 0..largest {
        tree.write(
            DomId::DOM0,
            &Path::parse(&format!("/warm/b{}/k{}", i % 64, i)).expect("valid path"),
            b"seed",
        )
        .expect("prepopulation writes succeed");
    }
    let clones = cfg.snapshot_clones;
    let (secs, disp) = measure(timer, cfg.wall_reps, || {
        for _ in 0..clones {
            std::hint::black_box(tree.clone());
        }
    });
    out.push(Metric::wall(
        SUITE,
        "snapshots_per_sec",
        "snapshots/s",
        Direction::HigherIsBetter,
        rate(clones as f64, secs),
        cfg.wall_reps as u64,
        disp,
    ));
}

/// vchan bulk throughput through `VchanPair::stream`.
fn suite_vchan(timer: &dyn WallTimer, cfg: &BenchConfig, out: &mut Vec<Metric>) {
    const SUITE: &str = "vchan";
    let payload: Vec<u8> = (0..cfg.vchan_bytes).map(|i| (i % 251) as u8).collect();
    let run = || {
        let mut grants = GrantTable::new();
        let mut evtchn = EventChannelTable::new();
        let mut pair =
            conduit::vchan::VchanPair::establish(&mut grants, &mut evtchn, DomId(1), DomId(2))
                .expect("vchan establishes");
        let received = pair
            .stream(conduit::vchan::Side::Client, &payload, &mut evtchn)
            .expect("stream completes");
        (received.len() as u64, pair.bytes_to_server())
    };
    let (delivered, ring_bytes) = run();
    out.push(Metric::virt(
        SUITE,
        "streamed_bytes",
        "bytes",
        ring_bytes as f64,
    ));
    out.push(Metric::virt(
        SUITE,
        "delivered_bytes",
        "bytes",
        delivered as f64,
    ));
    let (secs, disp) = measure(timer, cfg.wall_reps, || {
        run();
    });
    out.push(Metric::wall(
        SUITE,
        "bytes_per_sec",
        "bytes/s",
        Direction::HigherIsBetter,
        rate(cfg.vchan_bytes as f64, secs),
        cfg.wall_reps as u64,
        disp,
    ));
}

/// Tallies accumulated while frames traverse the iface → vchan → unikernel
/// path in [`suite_frame_path`].
#[derive(Default)]
struct FramePathTally {
    /// Ethernet frames pushed through the ring (both directions).
    frames: u64,
    /// Frame bytes that crossed the ring.
    ring_bytes: u64,
    /// HTTP payload bytes delivered to the client as TCP data.
    payload_bytes: u64,
    /// Buffer materialisations observed: one per non-empty ring drain plus
    /// one per delivered payload that is *not* a view of its frame.
    copies: u64,
    /// Completed HTTP exchanges (status parsed from reassembled payload).
    responses: u64,
}

/// Write `frame` into the ring from `from` and drain it on the other side:
/// the single sanctioned copy on the frame path.
fn cross_ring(
    ring: &mut VchanPair,
    evtchn: &mut EventChannelTable,
    from: Side,
    frame: &FrameBuf,
) -> FrameBuf {
    let mut offset = 0;
    while offset < frame.len() {
        offset += ring
            .write(from, &frame[offset..], evtchn)
            .expect("ring write progresses");
    }
    let to = match from {
        Side::Client => Side::Server,
        Side::Server => Side::Client,
    };
    ring.read(to, usize::MAX).expect("ring drain succeeds")
}

/// End-to-end zero-copy frame path: HTTP exchanges from a client interface
/// through a real vchan ring into a unikernel instance and back again, with
/// every frame in both directions crossing the ring.
///
/// `copies_per_packet` is the zero-copy claim as a number: each frame's
/// bytes are materialised exactly once (the ring drain at ingress) and
/// handed down to TCP delivery as `FrameBuf` views of that allocation, so
/// the exact value is 1.0 — any hidden copy between the ring and the
/// application pushes it above 1 and fails the bit-exact virtual gate.
fn suite_frame_path(timer: &dyn WallTimer, cfg: &BenchConfig, out: &mut Vec<Metric>) {
    const SUITE: &str = "frame_path";
    const SERVER_MAC: MacAddr = MacAddr([2, 0, 0, 0, 0, 0x20]);
    const CLIENT_MAC: MacAddr = MacAddr([2, 0, 0, 0, 0, 0x64]);
    let server_ip = Ipv4Addr::new(192, 168, 4, 20);
    let client_ip = Ipv4Addr::new(192, 168, 4, 100);
    let requests = cfg.frame_path_requests;
    let seed = cfg.seed;
    let run = || {
        let mut grants = GrantTable::new();
        let mut evtchn = EventChannelTable::new();
        let mut ring = VchanPair::establish(&mut grants, &mut evtchn, DomId(1), DomId(2))
            .expect("vchan establishes");
        let mut server = UnikernelInstance::new(
            UnikernelImage::mirage("bench"),
            SERVER_MAC,
            server_ip,
            80,
            Box::new(StaticSiteAppliance::new("bench")),
            seed,
        );
        let mut client = Interface::new(CLIENT_MAC, client_ip);
        client.add_arp_entry(server_ip, SERVER_MAC);
        server.iface.add_arp_entry(client_ip, CLIENT_MAC);
        let mut tally = FramePathTally::default();
        for _ in 0..requests {
            let mut to_server = vec![client.tcp_connect(server_ip, 80)];
            let mut sent_request = false;
            let mut body = Vec::new();
            for _ in 0..32 {
                if to_server.is_empty() {
                    break;
                }
                let mut to_client = Vec::new();
                for f in to_server.drain(..) {
                    tally.frames += 1;
                    tally.ring_bytes += f.len() as u64;
                    let wire = cross_ring(&mut ring, &mut evtchn, Side::Client, &f);
                    tally.copies += u64::from(wire.has_allocation());
                    let (frames, _) = server.handle_frame(&wire);
                    to_client.extend(frames);
                }
                for f in to_client {
                    tally.frames += 1;
                    tally.ring_bytes += f.len() as u64;
                    let wire = cross_ring(&mut ring, &mut evtchn, Side::Server, &f);
                    tally.copies += u64::from(wire.has_allocation());
                    let (frames, events) = client.handle_frame(&wire);
                    to_server.extend(frames);
                    for ev in events {
                        match ev {
                            IfaceEvent::TcpConnected { remote, local_port } if !sent_request => {
                                sent_request = true;
                                let req = HttpRequest::get("/", "bench").emit();
                                if let Some(f) = client.tcp_send(remote, local_port, &req) {
                                    to_server.push(f);
                                }
                            }
                            IfaceEvent::TcpData { data, .. } => {
                                tally.copies += u64::from(!data.shares_allocation(&wire));
                                tally.payload_bytes += data.len() as u64;
                                body.extend_from_slice(&data);
                            }
                            _ => {}
                        }
                    }
                }
            }
            let body = FrameBuf::from_vec(body);
            if let Ok(Some(resp)) = HttpResponse::parse(&body) {
                tally.responses += u64::from(resp.status == 200);
            }
        }
        tally
    };
    let t = run();
    out.push(Metric::virt(SUITE, "frames", "frames", t.frames as f64));
    out.push(Metric::virt(
        SUITE,
        "ring_bytes",
        "bytes",
        t.ring_bytes as f64,
    ));
    out.push(Metric::virt(
        SUITE,
        "payload_bytes",
        "bytes",
        t.payload_bytes as f64,
    ));
    out.push(Metric::virt(
        SUITE,
        "responses",
        "responses",
        t.responses as f64,
    ));
    out.push(Metric::virt(
        SUITE,
        "copies_per_packet",
        "copies",
        t.copies as f64 / t.frames as f64,
    ));
    let (secs, disp) = measure(timer, cfg.wall_reps, || {
        run();
    });
    out.push(Metric::wall(
        SUITE,
        "bytes_per_sec",
        "bytes/s",
        Direction::HigherIsBetter,
        rate(t.ring_bytes as f64, secs),
        cfg.wall_reps as u64,
        disp,
    ));
}

/// Full TCB handoff under storm: the handoff_storm cell, with its
/// virtual-time latency tail as exact metrics.
fn suite_handoff(timer: &dyn WallTimer, cfg: &BenchConfig, out: &mut Vec<Metric>) {
    const SUITE: &str = "handoff";
    let cell = handoff_storm::HandoffStormConfig {
        services: 8,
        rate_per_sec: 12.0,
        launch_slots: 2,
        idle_ttl: SimDuration::from_secs(1),
        duration: SimDuration::from_secs(5),
        seed: cfg.seed,
    };
    let r = handoff_storm::run_cell(&cell);
    out.push(Metric::virt(
        SUITE,
        "migrated_connections",
        "connections",
        r.migrated as f64,
    ));
    out.push(Metric::virt(
        SUITE,
        "completed_exchanges",
        "exchanges",
        r.completed as f64,
    ));
    out.push(Metric::virt(
        SUITE,
        "dropped_bytes",
        "bytes",
        r.dropped_bytes as f64,
    ));
    out.push(Metric::virt(
        SUITE,
        "duplicated_bytes",
        "bytes",
        r.duplicated_bytes as f64,
    ));
    out.push(Metric::virt(SUITE, "latency_p50", "ms", r.p50_ms));
    out.push(Metric::virt(SUITE, "latency_p99", "ms", r.p99_ms));
    out.push(Metric::virt(
        SUITE,
        "xs_merged",
        "commits",
        r.xs_merged as f64,
    ));
    out.push(Metric::virt(
        SUITE,
        "xs_conflicts",
        "aborts",
        r.xs_conflicts as f64,
    ));
    let (secs, disp) = measure(timer, cfg.wall_reps, || {
        handoff_storm::run_cell(&cell);
    });
    out.push(Metric::wall(
        SUITE,
        "cell_seconds",
        "s",
        Direction::LowerIsBetter,
        secs,
        cfg.wall_reps as u64,
        disp,
    ));
}

/// End-to-end cold start: DNS query through Synjitsu to the adopted
/// unikernel's first response byte.
fn suite_cold_start(timer: &dyn WallTimer, cfg: &BenchConfig, out: &mut Vec<Metric>) {
    const SUITE: &str = "cold_start";
    let client = Ipv4Addr::new(192, 168, 1, 100);
    let run = || {
        let config = JitsuConfig::new("bench.example").with_service(ServiceConfig::http_site(
            "svc.bench.example",
            Ipv4Addr::new(192, 168, 1, 20),
        ));
        let mut jitsud = Jitsud::new(config, BoardKind::Cubieboard2.board(), cfg.seed);
        jitsud
            .cold_start_request("svc.bench.example", client, "/")
            .expect("cold start succeeds")
    };
    let report = run();
    out.push(Metric::virt(
        SUITE,
        "dns_response_ms",
        "ms",
        report.dns_response_time.as_millis_f64(),
    ));
    out.push(Metric::virt(
        SUITE,
        "ttfb_ms",
        "ms",
        report.http_response_time.as_millis_f64(),
    ));
    let (secs, disp) = measure(timer, cfg.wall_reps, || {
        run();
    });
    out.push(Metric::wall(
        SUITE,
        "cold_start_seconds",
        "s",
        Direction::LowerIsBetter,
        secs,
        cfg.wall_reps as u64,
        disp,
    ));
}

/// What `--compare` concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// No drift, no regression.
    Pass,
    /// At least one wall metric regressed past tolerance (and no drift).
    WallRegression,
    /// At least one virtual metric drifted — the strictest failure.
    VirtualDrift,
}

impl Verdict {
    /// The process exit code the binary reports for this verdict.
    pub fn exit_code(self) -> i32 {
        match self {
            Verdict::Pass => 0,
            Verdict::WallRegression => 2,
            Verdict::VirtualDrift => 3,
        }
    }
}

/// The detailed outcome of comparing a snapshot against a baseline.
#[derive(Debug, Clone, Default)]
pub struct CompareReport {
    /// Virtual metrics whose values differ from the baseline (any amount).
    pub drifts: Vec<String>,
    /// Wall metrics that regressed past the tolerance.
    pub regressions: Vec<String>,
    /// Wall metrics that improved past the tolerance (informational).
    pub improvements: Vec<String>,
    /// Non-gating observations (new metrics, skipped comparisons).
    pub notes: Vec<String>,
}

impl CompareReport {
    /// Collapse the report into the gate's verdict.
    pub fn verdict(&self) -> Verdict {
        if !self.drifts.is_empty() {
            Verdict::VirtualDrift
        } else if !self.regressions.is_empty() {
            Verdict::WallRegression
        } else {
            Verdict::Pass
        }
    }

    /// Human-readable rendering, one line per entry.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.drifts {
            out.push_str(&format!("DRIFT      {d}\n"));
        }
        for r in &self.regressions {
            out.push_str(&format!("REGRESSION {r}\n"));
        }
        for i in &self.improvements {
            out.push_str(&format!("improved   {i}\n"));
        }
        for n in &self.notes {
            out.push_str(&format!("note       {n}\n"));
        }
        match self.verdict() {
            Verdict::Pass => out.push_str("verdict: PASS\n"),
            Verdict::WallRegression => out.push_str("verdict: WALL REGRESSION\n"),
            Verdict::VirtualDrift => out.push_str("verdict: VIRTUAL DRIFT\n"),
        }
        out
    }
}

/// Compare `current` against `baseline`.
///
/// Virtual metrics must match the baseline exactly (they are deterministic
/// functions of the tree); wall metrics may move by up to
/// `wall_tolerance_pct` percent in the losing direction before they count
/// as regressions. Metrics present in the baseline but missing from the
/// current snapshot are drift (a suite silently vanished); new metrics in
/// the current snapshot are merely noted.
pub fn compare(current: &Snapshot, baseline: &Snapshot, wall_tolerance_pct: f64) -> CompareReport {
    let mut report = CompareReport::default();
    if current.schema_version != baseline.schema_version {
        report.drifts.push(format!(
            "schema_version: current {} vs baseline {} — refresh the baseline",
            current.schema_version, baseline.schema_version
        ));
        return report;
    }
    let tol = wall_tolerance_pct / 100.0;
    let by_key: BTreeMap<String, &Metric> = current.metrics.iter().map(|m| (m.key(), m)).collect();
    for base in &baseline.metrics {
        let key = base.key();
        let Some(cur) = by_key.get(&key) else {
            report
                .drifts
                .push(format!("{key}: present in baseline, missing from snapshot"));
            continue;
        };
        match base.kind {
            MetricKind::Virtual => {
                // Bit-exact: these values are deterministic counts and
                // virtual-time figures; any difference is an intentional
                // algorithmic change that must also update the baseline.
                if cur.value.to_bits() != base.value.to_bits() {
                    report.drifts.push(format!(
                        "{key}: {:?} {} vs baseline {:?}",
                        cur.value, cur.unit, base.value
                    ));
                }
            }
            MetricKind::Wall => {
                if base.value <= 0.0 {
                    report
                        .notes
                        .push(format!("{key}: baseline has no wall sample, skipped"));
                    continue;
                }
                let ratio = cur.value / base.value;
                let (regressed, improved) = match base.direction {
                    Direction::LowerIsBetter => (ratio > 1.0 + tol, ratio < 1.0 - tol),
                    // Exact should not appear on wall metrics; treat as
                    // lower-is-better to stay conservative.
                    Direction::Exact => (ratio > 1.0 + tol, ratio < 1.0 - tol),
                    Direction::HigherIsBetter => (ratio < 1.0 - tol, ratio > 1.0 + tol),
                };
                let line = format!(
                    "{key}: {:.4} {} vs baseline {:.4} ({:+.1}%)",
                    cur.value,
                    cur.unit,
                    base.value,
                    (ratio - 1.0) * 100.0
                );
                if regressed {
                    report.regressions.push(line);
                } else if improved {
                    report.improvements.push(line);
                }
            }
        }
    }
    for m in &current.metrics {
        let key = m.key();
        if !baseline.metrics.iter().any(|b| b.key() == key) {
            report
                .notes
                .push(format!("{key}: new metric, not in baseline"));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(metrics: Vec<Metric>) -> Snapshot {
        Snapshot {
            schema_version: SCHEMA_VERSION,
            git_sha: "test".to_string(),
            date: "1970-01-01".to_string(),
            metrics,
        }
    }

    fn sample() -> Snapshot {
        snap(vec![
            Metric::virt("handoff", "migrated_connections", "connections", 42.0),
            Metric::wall(
                "sim_engine",
                "events_per_sec",
                "events/s",
                Direction::HigherIsBetter,
                1_000_000.0,
                5,
                0.05,
            ),
            Metric::wall(
                "cold_start",
                "cold_start_seconds",
                "s",
                Direction::LowerIsBetter,
                0.010,
                5,
                0.05,
            ),
        ])
    }

    #[test]
    fn identical_snapshots_pass() {
        let a = sample();
        let report = compare(&a, &a, DEFAULT_WALL_TOLERANCE_PCT);
        assert_eq!(report.verdict(), Verdict::Pass);
        assert_eq!(report.verdict().exit_code(), 0);
        assert!(report.drifts.is_empty() && report.regressions.is_empty());
    }

    #[test]
    fn wall_regressions_respect_direction_and_tolerance() {
        let base = sample();
        // Throughput down 20% → regression; duration up 20% → regression.
        let mut slow = sample();
        slow.metrics[1].value = 800_000.0;
        let report = compare(&slow, &base, 10.0);
        assert_eq!(report.verdict(), Verdict::WallRegression);
        assert_eq!(report.verdict().exit_code(), 2);
        let mut slower = sample();
        slower.metrics[2].value = 0.012;
        assert_eq!(
            compare(&slower, &base, 10.0).verdict(),
            Verdict::WallRegression
        );
        // Within tolerance → pass; better than baseline → pass with note.
        let mut ok = sample();
        ok.metrics[1].value = 950_000.0;
        assert_eq!(compare(&ok, &base, 10.0).verdict(), Verdict::Pass);
        let mut faster = sample();
        faster.metrics[1].value = 2_000_000.0;
        let report = compare(&faster, &base, 10.0);
        assert_eq!(report.verdict(), Verdict::Pass);
        assert_eq!(report.improvements.len(), 1);
    }

    #[test]
    fn any_virtual_drift_fails_regardless_of_size() {
        let base = sample();
        let mut drifted = sample();
        drifted.metrics[0].value = 43.0;
        let report = compare(&drifted, &base, 10.0);
        assert_eq!(report.verdict(), Verdict::VirtualDrift);
        assert_eq!(report.verdict().exit_code(), 3);
        // Drift outranks a simultaneous wall regression.
        drifted.metrics[1].value = 1.0;
        assert_eq!(
            compare(&drifted, &base, 10.0).verdict(),
            Verdict::VirtualDrift
        );
    }

    #[test]
    fn missing_and_new_metrics_are_classified() {
        let base = sample();
        let mut shrunk = sample();
        shrunk.metrics.remove(0);
        assert_eq!(
            compare(&shrunk, &base, 10.0).verdict(),
            Verdict::VirtualDrift
        );
        let mut grown = sample();
        grown
            .metrics
            .push(Metric::virt("new_suite", "thing", "count", 1.0));
        let report = compare(&grown, &base, 10.0);
        assert_eq!(report.verdict(), Verdict::Pass);
        assert_eq!(report.notes.len(), 1);
    }

    #[test]
    fn schema_version_mismatch_is_drift() {
        let base = sample();
        let mut future = sample();
        future.schema_version = SCHEMA_VERSION + 1;
        assert_eq!(
            compare(&future, &base, 10.0).verdict(),
            Verdict::VirtualDrift
        );
    }

    #[test]
    fn snapshot_json_round_trips() {
        let a = sample();
        let text = a.to_json();
        let back = Snapshot::from_json(&text).expect("parses");
        assert_eq!(back, a);
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn virtual_section_lists_only_virtual_metrics() {
        let s = sample();
        let section = s.virtual_section();
        assert!(section.contains("handoff/migrated_connections"));
        assert!(!section.contains("events_per_sec"));
    }
}
