//! Figure 9a: HTTP response-time CDFs for Jitsu cold starts.
//!
//! Three configurations: cold start without Synjitsu (the first SYN is lost
//! and the client's 1 s retransmission dominates), cold start with Synjitsu
//! over the vanilla toolstack, and cold start with Synjitsu over the
//! optimised toolstack. Every sample runs the full machinery — DNS query,
//! real domain construction and boot timelines, the real SYN proxying and
//! TCB handoff through XenStore, and a real HTTP response parsed by the
//! client.

use jitsu::config::{JitsuConfig, ServiceConfig};
use jitsu::jitsud::{ColdStartMode, Jitsud};
use jitsu_sim::{Cdf, Figure, Series};
use netstack::ipv4::Ipv4Addr;
use platform::BoardKind;

fn config_for(mode: ColdStartMode, index: u32) -> JitsuConfig {
    let service = ServiceConfig::http_site(
        "alice.family.name",
        Ipv4Addr::new(192, 168, 1, 20u8.wrapping_add((index % 200) as u8)),
    );
    let base = JitsuConfig::new("family.name").with_service(service);
    match mode {
        ColdStartMode::NoSynjitsu => base.without_synjitsu(),
        ColdStartMode::SynjitsuVanillaToolstack => base.with_vanilla_toolstack(),
        ColdStartMode::SynjitsuOptimised => base,
    }
}

/// Run `samples` independent cold starts for a mode and return the response
/// times in milliseconds.
pub fn cold_start_samples(mode: ColdStartMode, samples: usize, seed: u64) -> Vec<f64> {
    let mut out = Vec::with_capacity(samples);
    for i in 0..samples {
        let mut jitsud = Jitsud::new(
            config_for(mode, i as u32),
            BoardKind::Cubieboard2.board(),
            seed.wrapping_add(i as u64),
        );
        let report = jitsud
            .cold_start_request("alice.family.name", Ipv4Addr::new(192, 168, 1, 100), "/")
            .expect("cold start succeeds");
        assert_eq!(report.http_status, 200, "every request must be served");
        out.push(report.http_response_time.as_millis_f64());
    }
    out
}

/// Build Figure 9a as CDF series (x = time in ms, y = cumulative fraction).
pub fn figure(samples: usize, seed: u64) -> Figure {
    let mut figure = Figure::new(
        "Figure 9a: HTTP response times for Jitsu cold starts",
        "Time in milliseconds",
        "Cumulative fraction of requests",
    );
    for mode in ColdStartMode::ALL {
        let mut cdf = Cdf::from_values(cold_start_samples(mode, samples, seed));
        let series = Series::from_points(mode.label(), cdf.grid(0.0, 1600.0, 32));
        figure.add_series(series);
    }
    figure
}

#[cfg(test)]
mod tests {
    use super::*;
    use jitsu_sim::metrics::percentile;

    #[test]
    fn optimised_cold_starts_cluster_around_300ms() {
        let samples = cold_start_samples(ColdStartMode::SynjitsuOptimised, 12, 7);
        let median = percentile(&samples, 50.0);
        assert!((250.0..400.0).contains(&median), "median={median:.0} ms");
        assert!(samples.iter().all(|&x| x < 600.0));
    }

    #[test]
    fn no_synjitsu_cold_starts_exceed_one_second() {
        let samples = cold_start_samples(ColdStartMode::NoSynjitsu, 8, 7);
        assert!(samples.iter().all(|&x| x > 1000.0), "samples={samples:?}");
    }

    #[test]
    fn vanilla_toolstack_sits_between_the_other_two() {
        let optimised = percentile(
            &cold_start_samples(ColdStartMode::SynjitsuOptimised, 8, 3),
            50.0,
        );
        let vanilla = percentile(
            &cold_start_samples(ColdStartMode::SynjitsuVanillaToolstack, 8, 3),
            50.0,
        );
        let none = percentile(&cold_start_samples(ColdStartMode::NoSynjitsu, 8, 3), 50.0);
        assert!(optimised < vanilla, "{optimised:.0} vs {vanilla:.0}");
        assert!(vanilla < none, "{vanilla:.0} vs {none:.0}");
    }

    #[test]
    fn figure_cdfs_are_monotone_and_reach_one() {
        let fig = figure(6, 11);
        assert_eq!(fig.series().len(), 3);
        for series in fig.series() {
            assert!(series.is_monotone_nondecreasing(), "{}", series.label);
            assert!(
                (series.max_y().unwrap() - 1.0).abs() < 1e-9
                    || series.label.contains("no synjitsu"),
                "{} should reach 1.0 within the plotted range",
                series.label
            );
        }
    }
}
