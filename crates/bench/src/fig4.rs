//! Figure 4: domain build time vs VM memory size, per toolstack
//! optimisation step.

use jitsu_sim::{Figure, Series, SimDuration};
use platform::BoardKind;
use xen_sim::domain::DomainConfig;
use xen_sim::toolstack::{BootOptimisations, Toolstack};
use xenstore::EngineKind;

/// The memory sizes swept on the x axis (MiB).
pub const MEMORY_SWEEP: [u32; 5] = [16, 32, 64, 128, 256];

/// Measure the mean VM construction time for one configuration.
pub fn measure(
    board: BoardKind,
    opts: BootOptimisations,
    memory_mib: u32,
    samples: u32,
) -> SimDuration {
    let mut toolstack = Toolstack::new(
        board.board(),
        EngineKind::JitsuMerge,
        0xF19u64 + memory_mib as u64,
    );
    let mut total = SimDuration::ZERO;
    for _ in 0..samples.max(1) {
        let config = DomainConfig::unikernel("figure4-sweep").with_memory_mib(memory_mib);
        total += toolstack
            .measure_create(config, opts)
            .expect("board has capacity");
    }
    total / samples.max(1) as u64
}

/// Build Figure 4: the five cumulative ARM optimisation steps plus the
/// "switch from ARM to x86" final series.
pub fn figure(samples: u32) -> Figure {
    let mut figure = Figure::new(
        "Figure 4: Optimising Xen/ARM domain build times",
        "VM memory size / MiB",
        "Time / seconds",
    );
    for (label, opts) in BootOptimisations::figure4_steps() {
        let mut series = Series::new(label);
        for mem in MEMORY_SWEEP {
            series.push(
                mem as f64,
                measure(BoardKind::Cubieboard2, opts, mem, samples).as_secs_f64(),
            );
        }
        figure.add_series(series);
    }
    let mut x86 = Series::new("Switch from ARM to x86");
    for mem in MEMORY_SWEEP {
        x86.push(
            mem as f64,
            measure(
                BoardKind::X86Server,
                BootOptimisations::jitsu(),
                mem,
                samples,
            )
            .as_secs_f64(),
        );
    }
    figure.add_series(x86);
    figure
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vanilla_16mib_is_around_650ms_and_256mib_around_a_second() {
        let t16 = measure(BoardKind::Cubieboard2, BootOptimisations::vanilla(), 16, 3);
        let t256 = measure(BoardKind::Cubieboard2, BootOptimisations::vanilla(), 256, 3);
        assert!((550..760).contains(&t16.as_millis()), "t16={t16}");
        assert!((850..1250).contains(&t256.as_millis()), "t256={t256}");
    }

    #[test]
    fn fully_optimised_is_about_120ms_arm_and_20ms_x86() {
        let arm = measure(BoardKind::Cubieboard2, BootOptimisations::jitsu(), 16, 3);
        let x86 = measure(BoardKind::X86Server, BootOptimisations::jitsu(), 16, 3);
        assert!((90..160).contains(&arm.as_millis()), "arm={arm}");
        assert!((12..35).contains(&x86.as_millis()), "x86={x86}");
        // "around 6 times faster" (§3.1).
        let ratio = arm.as_secs_f64() / x86.as_secs_f64();
        assert!((4.0..8.0).contains(&ratio), "ratio={ratio:.1}");
    }

    #[test]
    fn each_optimisation_step_helps_at_16mib() {
        let steps = BootOptimisations::figure4_steps();
        let mut last = SimDuration::MAX;
        for (label, opts) in steps {
            let t = measure(BoardKind::Cubieboard2, opts, 16, 3);
            assert!(
                t <= last + SimDuration::from_millis(15),
                "{label}: {t} should not regress over {last}"
            );
            last = t;
        }
    }

    #[test]
    fn build_time_grows_with_memory_for_every_series() {
        let fig = figure(3);
        assert_eq!(fig.series().len(), 6);
        for series in fig.series() {
            // Memory zeroing dominates the slope, but the hotplug-script
            // jitter can wiggle adjacent points by a few milliseconds, so
            // compare the endpoints and the midpoint rather than requiring
            // strict monotonicity.
            let y16 = series.y_at(16.0).unwrap();
            let y128 = series.y_at(128.0).unwrap();
            let y256 = series.y_at(256.0).unwrap();
            assert!(
                y256 > y16,
                "{}: 256MiB ({y256:.3}s) must exceed 16MiB ({y16:.3}s)",
                series.label
            );
            assert!(y256 > y128, "{}: 256MiB must exceed 128MiB", series.label);
            assert_eq!(series.len(), MEMORY_SWEEP.len());
        }
    }
}
