//! Table 2: the CVE classification and which vulnerabilities Jitsu
//! eliminates.

use jitsu_sim::Table;
use security::{classify, summary, Cve, JitsuImpact, CVE_DATASET};

fn tick(b: bool) -> &'static str {
    if b {
        "x"
    } else {
        ""
    }
}

/// Build the per-CVE table (the body of Table 2), with the Jitsu column
/// derived by the classifier rather than transcribed.
pub fn table() -> Table {
    let mut table = Table::new(
        "Table 2: Representative vulnerabilities and whether they affect Jitsu",
        &[
            "Group",
            "CVE",
            "Description",
            "App",
            "Remote",
            "Execute",
            "DoS",
            "Exposure",
            "Jitsu",
        ],
    );
    for cve in CVE_DATASET {
        let affects = classify(cve) == JitsuImpact::StillApplicable;
        table.add_row(&[
            cve.component.label().to_string(),
            cve.id.to_string(),
            cve.description.to_string(),
            tick(cve.properties.app).to_string(),
            tick(cve.properties.remote).to_string(),
            tick(cve.properties.execute).to_string(),
            tick(cve.properties.dos).to_string(),
            tick(cve.properties.exposure).to_string(),
            tick(affects).to_string(),
        ]);
    }
    table
}

/// Build the per-layer summary table (the takeaway of §4's security
/// discussion).
pub fn summary_table() -> Table {
    let mut table = Table::new(
        "Table 2 summary: vulnerabilities eliminated by Jitsu per layer",
        &[
            "Layer",
            "Total",
            "Eliminated",
            "Remaining",
            "Remotely exploitable",
        ],
    );
    for s in summary() {
        table.add_row(&[
            s.component.label().to_string(),
            s.total.to_string(),
            s.eliminated.to_string(),
            s.remaining.to_string(),
            s.remote.to_string(),
        ]);
    }
    table
}

/// The CVEs whose derived classification would disagree with the paper's
/// published column (must be empty).
pub fn disagreements() -> Vec<&'static Cve> {
    CVE_DATASET
        .iter()
        .filter(|c| (classify(c) == JitsuImpact::StillApplicable) != c.affects_jitsu_in_paper)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_cve_table_has_all_rows() {
        let t = table();
        assert_eq!(t.row_count(), 32);
        let rendered = t.render();
        assert!(
            !rendered.contains("CVE-2014-6271"),
            "ShellShock is discussed in prose, not Table 2"
        );
        assert!(rendered.contains("CVE-2011-3992"));
        assert!(rendered.contains("Embedded systems"));
    }

    #[test]
    fn summary_matches_paper_narrative() {
        let t = summary_table();
        let csv = t.to_csv();
        assert!(csv.contains("Embedded systems,10,10,0,10"));
        assert!(csv.contains("Linux,10,8,2"));
        assert!(csv.contains("Xen,12,0,12,0"));
    }

    #[test]
    fn derived_column_never_disagrees_with_the_paper() {
        assert!(disagreements().is_empty());
    }
}
