//! Shared plumbing for fleet (multi-board) storm experiments.
//!
//! Both storm experiments can run as a *fleet*: N boards, each its own
//! [`jitsu::concurrent::ConcurrentJitsud`] world, executed as domains of a
//! [`jitsu_sim::ShardedSim`] with `SERVFAIL` fail-over between boards at
//! epoch barriers (`jitsu::fleet`). The helpers here pin the conventions
//! that make fleet runs reproducible and shard-count-invariant:
//!
//! * **board seeds** derive from the experiment seed and the board id only
//!   (never the shard), and board 0's seed *is* the experiment seed — so a
//!   1-board fleet is bit-identical to the classic single-board run;
//! * **the epoch length** is part of the experiment definition (it decides
//!   when fail-over retries arrive), fixed here for every fleet experiment.

use jitsu_sim::SimDuration;

/// The virtual-time epoch of every fleet experiment: cross-board fail-over
/// retries are delivered at the next 50 ms barrier, a plausible DNS
/// client retry latency and long enough that barrier overhead is noise.
pub const FLEET_EPOCH: SimDuration = SimDuration::from_millis(50);

/// The RNG seed of one board: board 0 keeps the experiment seed unchanged
/// (single-board fleets reproduce classic runs bit-for-bit); later boards
/// spread via the golden-ratio multiplier so their engine and arrival
/// streams are unrelated.
pub fn board_seed(seed: u64, board: u32) -> u64 {
    seed ^ u64::from(board).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Parse the shared storm-binary command line: an optional positional
/// hexadecimal seed plus `--boards N` and `--shards N` flags, in any
/// order. Unrecognised arguments and malformed values fall back to the
/// defaults (`default_seed`, 1 board, 1 shard) — the binaries are
/// experiment reproducers, not general CLIs.
pub fn parse_storm_args(default_seed: u64) -> (u64, u32, u32) {
    parse_args(std::env::args().skip(1), default_seed)
}

fn parse_args(args: impl Iterator<Item = String>, default_seed: u64) -> (u64, u32, u32) {
    let mut seed = default_seed;
    let mut boards = 1u32;
    let mut shards = 1u32;
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--boards" => {
                if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                    boards = n;
                }
            }
            "--shards" => {
                if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                    shards = n;
                }
            }
            s => {
                if let Ok(v) = u64::from_str_radix(s.trim_start_matches("0x"), 16) {
                    seed = v;
                }
            }
        }
    }
    (seed, boards.max(1), shards.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn board_zero_keeps_the_experiment_seed() {
        assert_eq!(board_seed(0x4A0D, 0), 0x4A0D);
        assert_eq!(board_seed(0xB007, 0), 0xB007);
    }

    #[test]
    fn args_parse_in_any_order_with_defaults() {
        let parse = |v: &[&str]| parse_args(v.iter().map(|s| s.to_string()), 0xB007);
        assert_eq!(parse(&[]), (0xB007, 1, 1));
        assert_eq!(parse(&["4A0D"]), (0x4A0D, 1, 1));
        assert_eq!(
            parse(&["0x4A0D", "--boards", "4", "--shards", "2"]),
            (0x4A0D, 4, 2)
        );
        assert_eq!(parse(&["--shards", "4", "--boards", "3", "1"]), (0x1, 3, 4));
        assert_eq!(parse(&["--boards", "0"]), (0xB007, 1, 1));
    }

    #[test]
    fn board_seeds_are_distinct() {
        let seeds: Vec<u64> = (0..16).map(|b| board_seed(0x4A0D, b)).collect();
        for (i, a) in seeds.iter().enumerate() {
            for b in &seeds[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
