//! # bench — experiment harnesses regenerating every table and figure
//!
//! Each module reproduces one artefact of the paper's evaluation and returns
//! it as a [`jitsu_sim::Figure`] or [`jitsu_sim::Table`]; the `src/bin/*`
//! binaries print them, and the Criterion benches exercise the hot paths the
//! experiments depend on. See `EXPERIMENTS.md` at the repository root for
//! the paper-vs-measured comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod boot_storm;
pub mod fig3;
pub mod fig4;
pub mod fig8;
pub mod fig9a;
pub mod fig9b;
pub mod fleet;
pub mod handoff_storm;
pub mod json;
pub mod snapshot;
pub mod table1;
pub mod table2;
pub mod throughput;
pub mod xenstore_storm;
