//! Figure 9b: Docker container start-time CDFs on the Cubieboard2.

use baselines::docker::{start_latencies, DockerConfig};
use baselines::inetd::Inetd;
use jitsu_sim::{Cdf, Figure, Series, SimRng};
use platform::BoardKind;

/// Run `samples` inetd-triggered container starts for one configuration and
/// return `(latencies in ms, failed starts)`.
pub fn container_samples(config: &DockerConfig, samples: usize, seed: u64) -> (Vec<f64>, usize) {
    let board = BoardKind::Cubieboard2.board();
    let mut rng = SimRng::seed_from_u64(seed);
    let mut inetd = Inetd::for_board(&board);
    let (latencies, failures) = start_latencies(config, &board, samples, &mut rng);
    let out = latencies
        .into_iter()
        .map(|l| (l + inetd.trigger()).as_millis_f64())
        .collect();
    (out, failures)
}

/// Build Figure 9b as CDF series.
pub fn figure(samples: usize, seed: u64) -> Figure {
    let mut figure = Figure::new(
        "Figure 9b: HTTP response times when spawning Docker containers",
        "Time in milliseconds",
        "Cumulative fraction of requests",
    );
    for (label, config) in DockerConfig::figure9b_variants() {
        let (latencies, _) = container_samples(&config, samples, seed);
        let mut cdf = Cdf::from_values(latencies);
        figure.add_series(Series::from_points(label, cdf.grid(0.0, 1600.0, 32)));
    }
    figure
}

#[cfg(test)]
mod tests {
    use super::*;
    use jitsu_sim::metrics::percentile;

    #[test]
    fn sd_card_starts_exceed_1100ms_tmpfs_exceeds_500ms() {
        let variants = DockerConfig::figure9b_variants();
        let (tmpfs, _) = container_samples(&variants[0].1, 40, 1);
        let (sd, _) = container_samples(&variants[1].1, 40, 1);
        assert!(
            percentile(&sd, 50.0) > 1000.0,
            "sd median {:.0}",
            percentile(&sd, 50.0)
        );
        assert!(
            percentile(&tmpfs, 50.0) > 450.0,
            "tmpfs median {:.0}",
            percentile(&tmpfs, 50.0)
        );
        assert!(percentile(&tmpfs, 50.0) < percentile(&sd, 50.0));
    }

    #[test]
    fn xen_dom0_is_slightly_slower_than_native() {
        let variants = DockerConfig::figure9b_variants();
        let (native, _) = container_samples(&variants[1].1, 40, 2);
        let (dom0, _) = container_samples(&variants[2].1, 40, 2);
        assert!(percentile(&dom0, 50.0) > percentile(&native, 50.0));
    }

    #[test]
    fn tmpfs_configuration_shows_failures() {
        let variants = DockerConfig::figure9b_variants();
        let (_, failures) = container_samples(&variants[0].1, 200, 3);
        assert!(
            failures > 0,
            "the tmpfs workaround fails a fraction of starts"
        );
    }

    #[test]
    fn every_container_start_is_slower_than_an_optimised_jitsu_cold_start() {
        // The comparison the paper draws: even the fastest container
        // configuration is slower than Jitsu's ~300-350 ms cold start.
        let fig = figure(20, 4);
        for series in fig.series() {
            // No series should have any mass below 350 ms.
            let below = series
                .points
                .iter()
                .filter(|p| p.x <= 350.0)
                .map(|p| p.y)
                .fold(0.0f64, f64::max);
            assert!(below < 1e-9, "{} has mass below 350 ms", series.label);
        }
    }
}
