//! # security — the CVE study behind Table 2
//!
//! Table 2 of the paper classifies a representative selection of 2011–2014
//! CVEs across three system layers — network-facing embedded firmware, the
//! Linux kernel, and Xen/ARM — by their properties (application-level,
//! remotely exploitable, arbitrary code execution, denial of service, data
//! exposure) and asks which would still affect a Jitsu deployment (Xen on
//! ARM with a Linux dom0 used only for network drivers). The paper's
//! argument: memory-safe protocol parsing eliminates the embedded-firmware
//! class entirely, the type-1 hypervisor removes reliance on the Linux
//! kernel for isolation so most of the middle class stops mattering, while
//! Xen/ARM's own (non-remote) bugs remain.
//!
//! This crate encodes the dataset and the classification rules so Table 2 is
//! *derived* rather than transcribed: [`classify`] decides Jitsu
//! applicability from a CVE's properties, and the test suite checks the
//! derivation against the published table.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cve;
pub mod report;

pub use cve::{Component, Cve, CveProperties, CVE_DATASET};
pub use report::{classify, eliminated_by_jitsu, summary, JitsuImpact, LayerSummary};
