//! Deriving Table 2's "Jitsu" column and its per-layer summary.

use crate::cve::{Component, Cve, CVE_DATASET};

/// How a Jitsu deployment is affected by a vulnerability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JitsuImpact {
    /// Eliminated outright: the vulnerable component simply is not present
    /// (unsafe-language protocol parsers, shells in the toolstack, reliance
    /// on the Linux kernel for tenant isolation).
    Eliminated,
    /// Still applicable: the component remains in Jitsu's trusted computing
    /// base (the hypervisor itself, and dom0's physical device drivers until
    /// driver domains are adopted).
    StillApplicable,
}

/// Classify one CVE according to the paper's argument (§4, Security):
///
/// * embedded-firmware bugs are protocol parsing in unsafe languages, which
///   Jitsu replaces with the memory-safe unikernel stack → eliminated;
/// * Linux kernel bugs stop mattering for isolation because Xen, not Linux,
///   isolates tenants — except bugs in physical device drivers that dom0
///   still runs → those remain;
/// * Xen/ARM bugs remain, since the hypervisor is the trusted computing base.
pub fn classify(cve: &Cve) -> JitsuImpact {
    match cve.component {
        Component::EmbeddedSystem => JitsuImpact::Eliminated,
        Component::LinuxKernel => {
            if cve.properties.dom0_device_driver {
                JitsuImpact::StillApplicable
            } else {
                JitsuImpact::Eliminated
            }
        }
        Component::XenArm => JitsuImpact::StillApplicable,
    }
}

/// True if Jitsu eliminates the vulnerability.
pub fn eliminated_by_jitsu(cve: &Cve) -> bool {
    classify(cve) == JitsuImpact::Eliminated
}

/// Per-layer summary counts for the table footer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerSummary {
    /// Which layer.
    pub component: Component,
    /// Total CVEs in the dataset for this layer.
    pub total: usize,
    /// How many Jitsu eliminates.
    pub eliminated: usize,
    /// How many remain applicable.
    pub remaining: usize,
    /// How many are remotely exploitable.
    pub remote: usize,
}

/// Summarise the dataset per layer, in Table 2 group order.
pub fn summary() -> Vec<LayerSummary> {
    [
        Component::EmbeddedSystem,
        Component::LinuxKernel,
        Component::XenArm,
    ]
    .into_iter()
    .map(|component| {
        let rows: Vec<&Cve> = CVE_DATASET
            .iter()
            .filter(|c| c.component == component)
            .collect();
        let eliminated = rows.iter().filter(|c| eliminated_by_jitsu(c)).count();
        LayerSummary {
            component,
            total: rows.len(),
            eliminated,
            remaining: rows.len() - eliminated,
            remote: rows.iter().filter(|c| c.properties.remote).count(),
        }
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_classification_matches_the_published_column() {
        // The paper's own Jitsu column is the ground truth; our rules must
        // re-derive it for every row.
        for cve in CVE_DATASET {
            let derived_affects = classify(cve) == JitsuImpact::StillApplicable;
            assert_eq!(
                derived_affects, cve.affects_jitsu_in_paper,
                "classification mismatch for {} ({})",
                cve.id, cve.description
            );
        }
    }

    #[test]
    fn all_embedded_cves_are_eliminated() {
        // "With Jitsu, the top group would be entirely eliminated."
        let s = &summary()[0];
        assert_eq!(s.component, Component::EmbeddedSystem);
        assert_eq!(s.total, 10);
        assert_eq!(s.eliminated, 10);
        assert_eq!(s.remaining, 0);
        assert_eq!(s.remote, 10);
    }

    #[test]
    fn linux_cves_are_largely_eliminated() {
        // "the middle group largely eliminated" — only the physical device
        // driver bugs remain.
        let s = &summary()[1];
        assert_eq!(s.component, Component::LinuxKernel);
        assert_eq!(s.total, 10);
        assert_eq!(s.eliminated, 8);
        assert_eq!(s.remaining, 2);
    }

    #[test]
    fn xen_cves_all_remain() {
        // "the bottom group would remain."
        let s = &summary()[2];
        assert_eq!(s.component, Component::XenArm);
        assert_eq!(s.total, 12);
        assert_eq!(s.eliminated, 0);
        assert_eq!(s.remaining, 12);
        assert_eq!(
            s.remote, 0,
            "none of the Xen/ARM bugs are remotely exploitable"
        );
    }

    #[test]
    fn overall_majority_of_vulnerabilities_eliminated() {
        let eliminated: usize = summary().iter().map(|s| s.eliminated).sum();
        let total: usize = summary().iter().map(|s| s.total).sum();
        assert_eq!(total, 32);
        assert!(
            eliminated * 2 > total,
            "Jitsu eliminates the majority ({eliminated}/{total})"
        );
    }
}
