//! The CVE dataset of Table 2.

/// Which system layer a vulnerability belongs to (the three groups of
/// Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Component {
    /// Network-facing embedded firmware (routers, cameras, gateways).
    EmbeddedSystem,
    /// The Linux kernel.
    LinuxKernel,
    /// The Xen hypervisor's ARM support.
    XenArm,
}

impl Component {
    /// Table 2 group label.
    pub fn label(self) -> &'static str {
        match self {
            Component::EmbeddedSystem => "Embedded systems",
            Component::LinuxKernel => "Linux",
            Component::XenArm => "Xen",
        }
    }
}

/// The per-CVE properties Table 2 ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CveProperties {
    /// Application-level vulnerability (`App` column).
    pub app: bool,
    /// Remotely exploitable (`Remote` column).
    pub remote: bool,
    /// Arbitrary code execution (`Execute` column).
    pub execute: bool,
    /// Denial of service (`DoS` column).
    pub dos: bool,
    /// Data exfiltration potential (`Exposure` column).
    pub exposure: bool,
    /// Whether the flaw lives in unsafe-language protocol parsing (the
    /// overflow class Jitsu's memory-safe stack removes).
    pub unsafe_protocol_parsing: bool,
    /// Whether the flaw is in a physical device driver that Jitsu's dom0
    /// still runs (the class that can continue to harm a Xen system until
    /// driver domains are adopted).
    pub dom0_device_driver: bool,
}

/// One CVE row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cve {
    /// The CVE identifier.
    pub id: &'static str,
    /// Short description as given in Table 2.
    pub description: &'static str,
    /// Which layer it belongs to.
    pub component: Component,
    /// Its properties.
    pub properties: CveProperties,
    /// Whether the paper marks it as still affecting a Jitsu system
    /// (the final column of Table 2).
    pub affects_jitsu_in_paper: bool,
}

const fn props(
    app: bool,
    remote: bool,
    execute: bool,
    dos: bool,
    exposure: bool,
    unsafe_parsing: bool,
    dom0_device_driver: bool,
) -> CveProperties {
    CveProperties {
        app,
        remote,
        execute,
        dos,
        exposure,
        unsafe_protocol_parsing: unsafe_parsing,
        dom0_device_driver,
    }
}

/// The 32 CVEs of Table 2, in the order the paper lists them.
pub const CVE_DATASET: &[Cve] = &[
    // --- Embedded systems: protocol parser overflows in unsafe languages.
    Cve {
        id: "CVE-2011-3992",
        description: "SSH overflow",
        component: Component::EmbeddedSystem,
        properties: props(true, true, true, true, true, true, false),
        affects_jitsu_in_paper: false,
    },
    Cve {
        id: "CVE-2012-1800",
        description: "DCP overflow",
        component: Component::EmbeddedSystem,
        properties: props(true, true, true, true, true, true, false),
        affects_jitsu_in_paper: false,
    },
    Cve {
        id: "CVE-2013-0659",
        description: "UDP overflow",
        component: Component::EmbeddedSystem,
        properties: props(true, true, true, true, true, true, false),
        affects_jitsu_in_paper: false,
    },
    Cve {
        id: "CVE-2013-1605",
        description: "HTTP overflow",
        component: Component::EmbeddedSystem,
        properties: props(true, true, true, true, true, true, false),
        affects_jitsu_in_paper: false,
    },
    Cve {
        id: "CVE-2013-2338",
        description: "SSO overflow",
        component: Component::EmbeddedSystem,
        properties: props(true, true, true, true, true, true, false),
        affects_jitsu_in_paper: false,
    },
    Cve {
        id: "CVE-2013-4977",
        description: "RTSP overflow",
        component: Component::EmbeddedSystem,
        properties: props(true, true, true, true, true, true, false),
        affects_jitsu_in_paper: false,
    },
    Cve {
        id: "CVE-2013-4980",
        description: "RTSP overflow",
        component: Component::EmbeddedSystem,
        properties: props(true, true, true, true, true, true, false),
        affects_jitsu_in_paper: false,
    },
    Cve {
        id: "CVE-2013-6343",
        description: "HTTP overflow",
        component: Component::EmbeddedSystem,
        properties: props(true, true, true, true, true, true, false),
        affects_jitsu_in_paper: false,
    },
    Cve {
        id: "CVE-2014-0355",
        description: "HTTP overflow",
        component: Component::EmbeddedSystem,
        properties: props(true, true, true, true, true, true, false),
        affects_jitsu_in_paper: false,
    },
    Cve {
        id: "CVE-2014-3936",
        description: "HNAP overflow",
        component: Component::EmbeddedSystem,
        properties: props(true, true, true, true, true, true, false),
        affects_jitsu_in_paper: false,
    },
    // --- Linux kernel.
    Cve {
        id: "CVE-2014-0077",
        description: "KVM overflow",
        component: Component::LinuxKernel,
        properties: props(false, false, true, true, true, false, false),
        affects_jitsu_in_paper: false,
    },
    Cve {
        id: "CVE-2014-0100",
        description: "IP fragmentation",
        component: Component::LinuxKernel,
        properties: props(false, true, false, true, false, false, false),
        affects_jitsu_in_paper: false,
    },
    Cve {
        id: "CVE-2014-0155",
        description: "KVM IOAPIC",
        component: Component::LinuxKernel,
        properties: props(false, false, false, true, false, false, false),
        affects_jitsu_in_paper: false,
    },
    Cve {
        id: "CVE-2014-0206",
        description: "AIO kernel mem",
        component: Component::LinuxKernel,
        properties: props(false, false, false, false, true, false, false),
        affects_jitsu_in_paper: false,
    },
    Cve {
        id: "CVE-2014-1690",
        description: "IRC netfilter",
        component: Component::LinuxKernel,
        properties: props(false, true, true, false, true, false, false),
        affects_jitsu_in_paper: false,
    },
    Cve {
        id: "CVE-2014-2309",
        description: "IPv6 routing mem",
        component: Component::LinuxKernel,
        properties: props(false, true, false, true, false, false, false),
        affects_jitsu_in_paper: false,
    },
    Cve {
        id: "CVE-2014-2672",
        description: "Atheros WLAN DoS",
        component: Component::LinuxKernel,
        properties: props(false, true, false, true, false, false, true),
        affects_jitsu_in_paper: true,
    },
    Cve {
        id: "CVE-2014-2706",
        description: "MAC 802.11 race",
        component: Component::LinuxKernel,
        properties: props(false, true, false, true, false, false, true),
        affects_jitsu_in_paper: true,
    },
    Cve {
        id: "CVE-2014-5206",
        description: "MNT NS bypass",
        component: Component::LinuxKernel,
        properties: props(false, false, false, false, true, false, false),
        affects_jitsu_in_paper: false,
    },
    Cve {
        id: "CVE-2014-5207",
        description: "MNT NS remount",
        component: Component::LinuxKernel,
        properties: props(false, false, false, true, true, false, false),
        affects_jitsu_in_paper: false,
    },
    // --- Xen on ARM.
    Cve {
        id: "CVE-2014-2580",
        description: "Net disable mutex",
        component: Component::XenArm,
        properties: props(false, false, false, true, false, false, false),
        affects_jitsu_in_paper: true,
    },
    Cve {
        id: "CVE-2014-2915",
        description: "Processor control",
        component: Component::XenArm,
        properties: props(false, false, false, true, false, false, false),
        affects_jitsu_in_paper: true,
    },
    Cve {
        id: "CVE-2014-2986",
        description: "NULL deref in VGIC",
        component: Component::XenArm,
        properties: props(false, false, false, true, false, false, false),
        affects_jitsu_in_paper: true,
    },
    Cve {
        id: "CVE-2014-3125",
        description: "Timer context switch",
        component: Component::XenArm,
        properties: props(false, false, false, true, false, false, false),
        affects_jitsu_in_paper: true,
    },
    Cve {
        id: "CVE-2014-3714",
        description: "Kernel load overflow",
        component: Component::XenArm,
        properties: props(false, false, true, true, false, false, false),
        affects_jitsu_in_paper: true,
    },
    Cve {
        id: "CVE-2014-3715",
        description: "DTB append",
        component: Component::XenArm,
        properties: props(false, false, true, true, false, false, false),
        affects_jitsu_in_paper: true,
    },
    Cve {
        id: "CVE-2014-3716",
        description: "DTB alignment",
        component: Component::XenArm,
        properties: props(false, false, false, true, false, false, false),
        affects_jitsu_in_paper: true,
    },
    Cve {
        id: "CVE-2014-3717",
        description: "Kernel load overflow",
        component: Component::XenArm,
        properties: props(false, false, true, true, false, false, false),
        affects_jitsu_in_paper: true,
    },
    Cve {
        id: "CVE-2014-3969",
        description: "Vmem privs",
        component: Component::XenArm,
        properties: props(false, false, true, true, true, false, false),
        affects_jitsu_in_paper: true,
    },
    Cve {
        id: "CVE-2014-4021",
        description: "Dirty recovery",
        component: Component::XenArm,
        properties: props(false, false, false, false, true, false, false),
        affects_jitsu_in_paper: true,
    },
    Cve {
        id: "CVE-2014-4022",
        description: "Dirty init",
        component: Component::XenArm,
        properties: props(false, false, false, false, true, false, false),
        affects_jitsu_in_paper: true,
    },
    Cve {
        id: "CVE-2014-5147",
        description: "32-bit traps",
        component: Component::XenArm,
        properties: props(false, false, false, true, false, false, false),
        affects_jitsu_in_paper: true,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_has_thirty_two_rows_in_three_groups() {
        assert_eq!(CVE_DATASET.len(), 32);
        let embedded = CVE_DATASET
            .iter()
            .filter(|c| c.component == Component::EmbeddedSystem)
            .count();
        let linux = CVE_DATASET
            .iter()
            .filter(|c| c.component == Component::LinuxKernel)
            .count();
        let xen = CVE_DATASET
            .iter()
            .filter(|c| c.component == Component::XenArm)
            .count();
        assert_eq!(embedded, 10);
        assert_eq!(linux, 10);
        assert_eq!(xen, 12);
    }

    #[test]
    fn cve_ids_are_unique_and_well_formed() {
        let mut ids: Vec<&str> = CVE_DATASET.iter().map(|c| c.id).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before, "duplicate CVE id in dataset");
        for id in ids {
            assert!(id.starts_with("CVE-20"), "{id}");
        }
    }

    #[test]
    fn embedded_rows_are_full_row_ticks() {
        // The top group of Table 2 has every column ticked: app-level,
        // remote, code execution, DoS and exposure.
        for cve in CVE_DATASET
            .iter()
            .filter(|c| c.component == Component::EmbeddedSystem)
        {
            let p = cve.properties;
            assert!(
                p.app && p.remote && p.execute && p.dos && p.exposure,
                "{}",
                cve.id
            );
            assert!(p.unsafe_protocol_parsing);
        }
    }

    #[test]
    fn xen_rows_are_not_remotely_exploitable() {
        // §4: "none of these are exploitable remotely."
        for cve in CVE_DATASET
            .iter()
            .filter(|c| c.component == Component::XenArm)
        {
            assert!(!cve.properties.remote, "{}", cve.id);
            assert!(
                cve.affects_jitsu_in_paper,
                "Xen bugs remain in the TCB: {}",
                cve.id
            );
        }
    }

    #[test]
    fn component_labels() {
        assert_eq!(Component::EmbeddedSystem.label(), "Embedded systems");
        assert_eq!(Component::LinuxKernel.label(), "Linux");
        assert_eq!(Component::XenArm.label(), "Xen");
    }
}
