//! Docker container start-up baseline (Figure 9b).
//!
//! The paper measures Docker 1.2.0 spawning a container per request,
//! triggered from `inetd`, on the Cubieboard2: "A container's start latency
//! ... is dominated by disk I/O. When running directly from a 10MB/s SD
//! card, Docker takes at least 1.1s (native Linux) or 1.2s (under Xen) to
//! spawn a new container ... [with] Docker's volumes on an ext4 loopback
//! volume inside of a tmpfs ... container start times remained at 600ms or
//! higher" and "this configuration also generated buffer IO, ext4 and VFS
//! errors in a significant fraction of tests resulting in early process
//! termination."
//!
//! The model decomposes a container start into the metadata-heavy I/O of
//! reading image/layer metadata and materialising the union filesystem,
//! plus fixed CPU costs for namespaces, cgroups and the exec of the daemon
//! and container processes. Running under Xen (in dom0) adds a small
//! virtualisation overhead.

use jitsu_sim::{SimDuration, SimRng};
use platform::{Board, StorageDevice, StorageKind};

/// Where the container runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContainerRuntime {
    /// Directly on native Linux on the board.
    NativeLinux,
    /// Inside the Xen dom0 on the same board.
    XenDom0,
}

/// Configuration of one Docker baseline variant.
#[derive(Debug, Clone)]
pub struct DockerConfig {
    /// Storage backing `/var/lib/docker`.
    pub storage: StorageDevice,
    /// Where dockerd runs.
    pub runtime: ContainerRuntime,
    /// Number of image layers in the container's filesystem.
    pub image_layers: u32,
    /// Metadata operations per layer (stat/open/read of config and diff
    /// files, device-mapper table updates, …).
    pub metadata_ops_per_layer: u32,
}

impl DockerConfig {
    /// The three Figure 9b configurations, in legend order.
    pub fn figure9b_variants() -> Vec<(&'static str, DockerConfig)> {
        vec![
            (
                "Docker w/ ext4 on tmpfs",
                DockerConfig {
                    storage: StorageKind::TmpfsLoopback.device(),
                    runtime: ContainerRuntime::NativeLinux,
                    image_layers: 6,
                    metadata_ops_per_layer: 20,
                },
            ),
            (
                "Docker w/ ext4 on SD card",
                DockerConfig {
                    storage: StorageKind::SdCard.device(),
                    runtime: ContainerRuntime::NativeLinux,
                    image_layers: 6,
                    metadata_ops_per_layer: 20,
                },
            ),
            (
                "Docker in Xen dom0 w/ ext4 on SD card",
                DockerConfig {
                    storage: StorageKind::SdCard.device(),
                    runtime: ContainerRuntime::XenDom0,
                    image_layers: 6,
                    metadata_ops_per_layer: 20,
                },
            ),
        ]
    }
}

/// The outcome of one container start attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContainerStart {
    /// Time spent reading image and layer metadata.
    pub metadata_io: SimDuration,
    /// Time spent materialising the union filesystem / device-mapper volume.
    pub filesystem_setup: SimDuration,
    /// Time spent creating namespaces and cgroups and forking the container
    /// process.
    pub process_setup: SimDuration,
    /// Extra overhead of running under the hypervisor (dom0 scheduling and
    /// I/O path), zero for native Linux.
    pub virtualisation_overhead: SimDuration,
    /// Whether the start failed with an I/O error (early process
    /// termination), as observed for the tmpfs workaround.
    pub failed: bool,
}

impl ContainerStart {
    /// End-to-end start latency (failed starts still consume the time spent
    /// before the error).
    pub fn total(&self) -> SimDuration {
        self.metadata_io + self.filesystem_setup + self.process_setup + self.virtualisation_overhead
    }
}

/// Simulate one container start.
pub fn start_container(config: &DockerConfig, board: &Board, rng: &mut SimRng) -> ContainerStart {
    let ops = (config.image_layers * config.metadata_ops_per_layer) as usize;
    // Metadata reads are small (4 KiB-ish) but numerous and latency-bound.
    let metadata_io = config.storage.random_io_time(ops, 4096, rng);
    // Materialising the container filesystem touches larger extents.
    let filesystem_setup = config.storage.random_io_time(10, 64 * 1024, rng)
        + config.storage.write_time(256 * 1024, rng);
    // Namespace/cgroup setup, the docker CLI → daemon → containerd → runc
    // round trips and the double fork/exec are CPU-bound: ≈95 ms on the x86
    // reference, scaled to the board (≈570 ms on the Cubieboard2), which is
    // the floor under even the tmpfs configuration.
    let process_setup = board.scale_cpu(SimDuration::from_micros(95_000));
    let virtualisation_overhead = match config.runtime {
        ContainerRuntime::NativeLinux => SimDuration::ZERO,
        // Running in dom0 adds ~8% to the I/O-heavy phases (the paper's 1.1s
        // native vs 1.2s under Xen).
        ContainerRuntime::XenDom0 => (metadata_io + filesystem_setup).mul_f64(0.08),
    };
    let failed = config.storage.draw_io_error(rng);
    ContainerStart {
        metadata_io,
        filesystem_setup,
        process_setup,
        virtualisation_overhead,
        failed,
    }
}

/// Simulate `n` container starts and return their latencies (failed starts
/// are excluded, mirroring how the paper plots successful requests) together
/// with the number of failures.
pub fn start_latencies(
    config: &DockerConfig,
    board: &Board,
    n: usize,
    rng: &mut SimRng,
) -> (Vec<SimDuration>, usize) {
    let mut latencies = Vec::with_capacity(n);
    let mut failures = 0;
    for _ in 0..n {
        let start = start_container(config, board, rng);
        if start.failed {
            failures += 1;
        } else {
            latencies.push(start.total());
        }
    }
    (latencies, failures)
}

#[cfg(test)]
mod tests {
    use super::*;
    use platform::BoardKind;

    fn rng() -> SimRng {
        SimRng::seed_from_u64(2024)
    }

    fn board() -> Board {
        BoardKind::Cubieboard2.board()
    }

    #[test]
    fn sd_card_start_takes_over_a_second() {
        let config = &DockerConfig::figure9b_variants()[1].1;
        let mut r = rng();
        let (latencies, _) = start_latencies(config, &board(), 50, &mut r);
        let mean_ms =
            latencies.iter().map(|d| d.as_millis_f64()).sum::<f64>() / latencies.len() as f64;
        assert!(
            (1000.0..1600.0).contains(&mean_ms),
            "paper: ≥1.1 s, got {mean_ms:.0} ms"
        );
        assert!(latencies.iter().all(|d| d.as_millis() >= 800));
    }

    #[test]
    fn tmpfs_start_is_faster_but_still_600ms_or_more() {
        let config = &DockerConfig::figure9b_variants()[0].1;
        let mut r = rng();
        let (latencies, _) = start_latencies(config, &board(), 50, &mut r);
        let min_ms = latencies
            .iter()
            .map(|d| d.as_millis_f64())
            .fold(f64::INFINITY, f64::min);
        let mean_ms =
            latencies.iter().map(|d| d.as_millis_f64()).sum::<f64>() / latencies.len() as f64;
        assert!(min_ms >= 100.0, "min={min_ms}");
        assert!((250.0..900.0).contains(&mean_ms), "mean={mean_ms}");
        // Faster than the SD card configuration.
        let sd = &DockerConfig::figure9b_variants()[1].1;
        let (sd_lat, _) = start_latencies(sd, &board(), 50, &mut r);
        let sd_mean = sd_lat.iter().map(|d| d.as_millis_f64()).sum::<f64>() / sd_lat.len() as f64;
        assert!(sd_mean > mean_ms);
    }

    #[test]
    fn xen_dom0_adds_overhead_over_native() {
        let variants = DockerConfig::figure9b_variants();
        let mut r1 = rng();
        let mut r2 = rng();
        let (native, _) = start_latencies(&variants[1].1, &board(), 40, &mut r1);
        let (dom0, _) = start_latencies(&variants[2].1, &board(), 40, &mut r2);
        let native_mean: f64 =
            native.iter().map(|d| d.as_millis_f64()).sum::<f64>() / native.len() as f64;
        let dom0_mean: f64 =
            dom0.iter().map(|d| d.as_millis_f64()).sum::<f64>() / dom0.len() as f64;
        assert!(dom0_mean > native_mean);
        assert!(dom0_mean < native_mean * 1.25, "overhead is modest");
    }

    #[test]
    fn tmpfs_workaround_produces_failures() {
        let config = &DockerConfig::figure9b_variants()[0].1;
        let mut r = rng();
        let (_, failures) = start_latencies(config, &board(), 300, &mut r);
        assert!(
            failures > 5,
            "a significant fraction of tests fail, got {failures}"
        );
        // The SD card configuration does not fail.
        let sd = &DockerConfig::figure9b_variants()[1].1;
        let (_, sd_failures) = start_latencies(sd, &board(), 300, &mut r);
        assert_eq!(sd_failures, 0);
    }

    #[test]
    fn container_start_is_slower_than_optimised_unikernel_construction() {
        // The headline comparison: even the best container configuration is
        // several times slower than Jitsu's ~120 ms VM construction +
        // ~200 ms boot.
        let config = &DockerConfig::figure9b_variants()[0].1;
        let mut r = rng();
        let start = start_container(config, &board(), &mut r);
        assert!(start.total() > SimDuration::from_millis(350));
    }

    #[test]
    fn report_components_are_all_positive() {
        let config = &DockerConfig::figure9b_variants()[2].1;
        let mut r = rng();
        let start = start_container(config, &board(), &mut r);
        assert!(start.metadata_io > SimDuration::ZERO);
        assert!(start.filesystem_setup > SimDuration::ZERO);
        assert!(start.process_setup > SimDuration::ZERO);
        assert!(start.virtualisation_overhead > SimDuration::ZERO);
        assert_eq!(
            start.total(),
            start.metadata_io
                + start.filesystem_setup
                + start.process_setup
                + start.virtualisation_overhead
        );
    }
}
