//! The `inetd` trigger path.
//!
//! Jitsu is described as "the Xen equivalent of the venerable inetd service
//! on Unix" (§3). The Docker baseline in Figure 9b is triggered the classic
//! way: `inetd` listens on the service port and forks a handler (here,
//! `docker run`) per incoming connection. This model accounts for the
//! super-server's accept/fork/exec overhead so baseline latencies include
//! the same trigger cost the paper measured.

use jitsu_sim::SimDuration;
use platform::Board;

/// The inetd super-server model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Inetd {
    /// Cost of accepting the connection and looking up the service entry.
    pub accept_cost: SimDuration,
    /// Cost of fork+exec of the configured handler.
    pub spawn_cost: SimDuration,
    connections_handled: u64,
}

impl Inetd {
    /// The calibrated model for a board (≈0.5 ms accept + ≈2 ms fork/exec on
    /// the x86 reference, scaled).
    pub fn for_board(board: &Board) -> Inetd {
        Inetd {
            accept_cost: board.scale_cpu(SimDuration::from_micros(500)),
            spawn_cost: board.scale_cpu(SimDuration::from_micros(2_000)),
            connections_handled: 0,
        }
    }

    /// Handle one incoming connection, returning the trigger overhead that
    /// elapses before the handler process starts doing real work.
    pub fn trigger(&mut self) -> SimDuration {
        self.connections_handled += 1;
        self.accept_cost + self.spawn_cost
    }

    /// Number of connections handled so far.
    pub fn connections_handled(&self) -> u64 {
        self.connections_handled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platform::BoardKind;

    #[test]
    fn trigger_overhead_is_milliseconds_on_arm() {
        let mut inetd = Inetd::for_board(&BoardKind::Cubieboard2.board());
        let t = inetd.trigger();
        assert!((10..30).contains(&t.as_millis()), "t={t}");
        assert_eq!(inetd.connections_handled(), 1);
        inetd.trigger();
        assert_eq!(inetd.connections_handled(), 2);
    }

    #[test]
    fn x86_trigger_is_faster() {
        let mut arm = Inetd::for_board(&BoardKind::Cubieboard2.board());
        let mut x86 = Inetd::for_board(&BoardKind::X86Server.board());
        assert!(x86.trigger() < arm.trigger());
    }

    #[test]
    fn trigger_is_negligible_compared_to_container_start() {
        // The inetd overhead is not what makes Figure 9b slow.
        let mut inetd = Inetd::for_board(&BoardKind::Cubieboard2.board());
        assert!(inetd.trigger() < SimDuration::from_millis(50));
    }
}
