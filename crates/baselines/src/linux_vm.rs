//! The full Linux VM baseline.
//!
//! "We do not plot the start time of a full Ubuntu Linux VM, since it took
//! over 5s with the default distribution image" (§4). This model composes
//! the pieces the rest of the reproduction already has — domain construction
//! from `xen-sim` and the Linux guest boot pipeline from `unikernel::boot` —
//! to produce that number, so the comparison in examples and benches is
//! apples-to-apples with the Jitsu path.

use jitsu_sim::SimDuration;
use platform::Board;
use unikernel::boot::BootPipeline;
use unikernel::image::{ImageKind, UnikernelImage};
use xen_sim::toolstack::{BootOptimisations, Toolstack, ToolstackError};
use xenstore::EngineKind;

/// The Linux VM cold-start baseline.
#[derive(Debug)]
pub struct LinuxVmBaseline {
    /// The Ubuntu image used.
    pub image: UnikernelImage,
    board: Board,
}

impl LinuxVmBaseline {
    /// Create the baseline for a board.
    pub fn new(board: Board) -> LinuxVmBaseline {
        LinuxVmBaseline {
            image: UnikernelImage::ubuntu("ubuntu-14.04"),
            board,
        }
    }

    /// Measure a cold start: vanilla toolstack domain construction plus the
    /// Linux boot pipeline plus service start inside the guest.
    pub fn cold_start(&self, seed: u64) -> Result<SimDuration, ToolstackError> {
        let mut toolstack = Toolstack::new(self.board.clone(), EngineKind::Merge, seed);
        let construction = toolstack
            .create_domain(self.image.domain_config(), BootOptimisations::vanilla())?
            .total;
        let boot = BootPipeline::for_image(ImageKind::LinuxVm, &self.board).total();
        // Starting the actual network service (systemd unit / initscript)
        // once userspace is up.
        let service_start = self.board.scale_cpu(SimDuration::from_micros(150_000));
        Ok(construction + boot + service_start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platform::BoardKind;

    #[test]
    fn ubuntu_cold_start_exceeds_five_seconds_on_arm() {
        let baseline = LinuxVmBaseline::new(BoardKind::Cubieboard2.board());
        let t = baseline.cold_start(1).unwrap().as_secs_f64();
        assert!(t > 5.0, "paper: over 5 s, got {t:.2}");
        assert!(t < 12.0, "but not absurdly long: {t:.2}");
    }

    #[test]
    fn x86_linux_cold_start_is_much_faster_but_still_heavy() {
        let arm = LinuxVmBaseline::new(BoardKind::Cubieboard2.board());
        let x86 = LinuxVmBaseline::new(BoardKind::X86Server.board());
        let t_arm = arm.cold_start(1).unwrap();
        let t_x86 = x86.cold_start(1).unwrap();
        assert!(t_x86 < t_arm);
        assert!(t_x86 > SimDuration::from_millis(500));
    }
}
