//! # baselines — the systems Jitsu is compared against
//!
//! §4 compares on-demand unikernel launch against two alternatives on the
//! same hardware: Docker containers started from `inetd` (Figure 9b) and
//! full Linux VMs (whose >5 s boot is not even plotted). This crate models
//! both baselines:
//!
//! * [`docker`] — the container start pipeline (image metadata, layer
//!   mounts, union filesystem setup, namespace/cgroup creation, process
//!   exec), dominated by metadata-heavy I/O on the backing store, plus the
//!   occasional ext4/VFS failure observed for the devicemapper-on-tmpfs
//!   workaround;
//! * [`inetd`] — the trigger path shared by the baselines: a listening
//!   super-server that forks a handler per incoming connection;
//! * [`linux_vm`] — cold-starting a service inside a freshly booted Linux
//!   guest.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod docker;
pub mod inetd;
pub mod linux_vm;

pub use docker::{ContainerRuntime, ContainerStart, DockerConfig};
pub use inetd::Inetd;
pub use linux_vm::LinuxVmBaseline;
