//! Evaluation boards and their CPU/memory/NIC characteristics.

use jitsu_sim::SimDuration;

/// Processor architecture of a board.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Arch {
    /// ARM v7-A with the Virtualization Extensions (Cubieboards).
    Arm,
    /// x86-64 with VT-x (the comparison server and the NUC).
    X86,
}

impl Arch {
    /// Short label used in figures.
    pub fn label(self) -> &'static str {
        match self {
            Arch::Arm => "ARM",
            Arch::X86 => "x86",
        }
    }
}

/// The specific hardware platforms used in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BoardKind {
    /// Cubieboard2: dual-core Allwinner A20, 1 GB RAM, 100 Mb Ethernet, £39.
    Cubieboard2,
    /// Cubietruck: same CPU, 2 GB RAM, 1 Gb Ethernet.
    Cubietruck,
    /// The 2.4 GHz quad-core AMD x86-64 server used for the x86 boot-time
    /// comparison (§3.1).
    X86Server,
    /// Intel Haswell NUC (D54250WYK), the x86 power comparison point in
    /// Table 1.
    IntelNuc,
}

impl BoardKind {
    /// All boards, in the order they appear in the paper.
    pub const ALL: [BoardKind; 4] = [
        BoardKind::Cubieboard2,
        BoardKind::Cubietruck,
        BoardKind::X86Server,
        BoardKind::IntelNuc,
    ];

    /// Construct the full board description.
    pub fn board(self) -> Board {
        Board::new(self)
    }
}

/// A hardware platform description.
#[derive(Debug, Clone, PartialEq)]
pub struct Board {
    /// Which platform this is.
    pub kind: BoardKind,
    /// Marketing name used in tables.
    pub name: &'static str,
    /// Processor architecture.
    pub arch: Arch,
    /// Number of physical CPU cores.
    pub cores: u32,
    /// RAM in MiB.
    pub ram_mib: u32,
    /// NIC line rate in Mb/s.
    pub nic_mbps: u32,
    /// CPU speed relative to the x86 server (1.0); used to scale CPU-bound
    /// toolstack costs. The paper reports the most-optimised domain build at
    /// 120 ms on ARM versus 20 ms on x86 — a factor of six.
    pub cpu_scale: f64,
    /// Approximate price in GBP, for the cost discussion in §1.
    pub price_gbp: f64,
}

impl Board {
    /// Describe a board.
    pub fn new(kind: BoardKind) -> Board {
        match kind {
            BoardKind::Cubieboard2 => Board {
                kind,
                name: "Cubieboard2",
                arch: Arch::Arm,
                cores: 2,
                ram_mib: 1024,
                nic_mbps: 100,
                cpu_scale: 6.0,
                price_gbp: 39.0,
            },
            BoardKind::Cubietruck => Board {
                kind,
                name: "Cubietruck",
                arch: Arch::Arm,
                cores: 2,
                ram_mib: 2048,
                nic_mbps: 1000,
                cpu_scale: 6.0,
                price_gbp: 69.0,
            },
            BoardKind::X86Server => Board {
                kind,
                name: "x86-64 server (2.4GHz quad-core AMD)",
                arch: Arch::X86,
                cores: 4,
                ram_mib: 16 * 1024,
                nic_mbps: 1000,
                cpu_scale: 1.0,
                price_gbp: 600.0,
            },
            BoardKind::IntelNuc => Board {
                kind,
                name: "Intel Haswell NUC",
                arch: Arch::X86,
                cores: 4,
                ram_mib: 8 * 1024,
                nic_mbps: 1000,
                cpu_scale: 1.2,
                price_gbp: 350.0,
            },
        }
    }

    /// Scale a CPU-bound duration measured on the x86 server to this board.
    pub fn scale_cpu(&self, x86_duration: SimDuration) -> SimDuration {
        x86_duration.mul_f64(self.cpu_scale)
    }

    /// Time to transmit `bytes` at the NIC line rate (excluding protocol
    /// overheads).
    pub fn wire_time(&self, bytes: usize) -> SimDuration {
        let bits = bytes as f64 * 8.0;
        let seconds = bits / (self.nic_mbps as f64 * 1e6);
        SimDuration::from_secs_f64(seconds)
    }

    /// True for the resource-constrained embedded boards.
    pub fn is_embedded(&self) -> bool {
        matches!(self.kind, BoardKind::Cubieboard2 | BoardKind::Cubietruck)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn board_catalogue_matches_paper() {
        let cb2 = BoardKind::Cubieboard2.board();
        assert_eq!(cb2.ram_mib, 1024);
        assert_eq!(cb2.nic_mbps, 100);
        assert_eq!(cb2.cores, 2);
        assert_eq!(cb2.arch, Arch::Arm);
        assert!((cb2.price_gbp - 39.0).abs() < 1e-9);
        assert!(cb2.is_embedded());

        let ct = BoardKind::Cubietruck.board();
        assert_eq!(ct.ram_mib, 2048);
        assert_eq!(ct.nic_mbps, 1000);
        assert!(ct.is_embedded());

        let x86 = BoardKind::X86Server.board();
        assert_eq!(x86.arch, Arch::X86);
        assert!(!x86.is_embedded());
        assert_eq!(x86.cpu_scale, 1.0);

        assert_eq!(BoardKind::ALL.len(), 4);
    }

    #[test]
    fn arm_is_about_six_times_slower() {
        // §3.1: 20 ms most-optimised build on x86 vs 120 ms on ARM.
        let arm = BoardKind::Cubieboard2.board();
        let scaled = arm.scale_cpu(SimDuration::from_millis(20));
        assert_eq!(scaled.as_millis(), 120);
    }

    #[test]
    fn wire_time_scales_with_nic_speed() {
        let cb2 = BoardKind::Cubieboard2.board(); // 100 Mb/s
        let ct = BoardKind::Cubietruck.board(); // 1 Gb/s
        let t_cb2 = cb2.wire_time(1500);
        let t_ct = ct.wire_time(1500);
        assert!(t_cb2 > t_ct);
        // 1500 bytes at 100 Mb/s = 120 us.
        assert_eq!(t_cb2.as_micros(), 120);
        assert_eq!(ct.wire_time(0), SimDuration::ZERO);
    }

    #[test]
    fn arch_labels() {
        assert_eq!(Arch::Arm.label(), "ARM");
        assert_eq!(Arch::X86.label(), "x86");
    }
}
