//! Battery runtime model.
//!
//! §4 of the paper: "We also powered a Cubieboard with a USB battery unit
//! that ran for 9 hours while logging the date every minute." This module
//! models a USB power bank discharging into a board so the benchmark harness
//! can recompute the expected runtime for the observed idle-ish workload.

use crate::board::BoardKind;
use crate::power::{PowerComponent, PowerModel, PowerState};

/// A USB battery pack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Battery {
    /// Capacity in watt-hours.
    pub capacity_wh: f64,
    /// Conversion efficiency of the 5 V boost regulator (0–1).
    pub efficiency: f64,
}

impl Battery {
    /// A typical 10,000 mAh (3.7 V ≈ 37 Wh) power bank like the one used in
    /// the paper's experiment.
    pub fn typical_power_bank() -> Battery {
        Battery {
            capacity_wh: 37.0,
            efficiency: 0.85,
        }
    }

    /// A battery with an explicit capacity and efficiency.
    pub fn new(capacity_wh: f64, efficiency: f64) -> Battery {
        Battery {
            capacity_wh: capacity_wh.max(0.0),
            efficiency: efficiency.clamp(0.0, 1.0),
        }
    }

    /// Usable energy after conversion losses, in watt-hours.
    pub fn usable_wh(&self) -> f64 {
        self.capacity_wh * self.efficiency
    }

    /// Runtime in hours when powering a board in the given state.
    pub fn runtime_hours(
        &self,
        board: BoardKind,
        state: PowerState,
        components: &[PowerComponent],
    ) -> f64 {
        let watts = PowerModel::for_board(board).watts(state, components);
        if watts <= 0.0 {
            return f64::INFINITY;
        }
        self.usable_wh() / watts
    }

    /// Runtime in hours for a mixed duty cycle: `busy_fraction` of time
    /// spinning, the rest idle.
    pub fn runtime_hours_duty_cycle(
        &self,
        board: BoardKind,
        components: &[PowerComponent],
        busy_fraction: f64,
    ) -> f64 {
        let busy = busy_fraction.clamp(0.0, 1.0);
        let model = PowerModel::for_board(board);
        let avg = model.watts(PowerState::Spinning, components) * busy
            + model.watts(PowerState::Idle, components) * (1.0 - busy);
        if avg <= 0.0 {
            return f64::INFINITY;
        }
        self.usable_wh() / avg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_battery_experiment_is_plausible() {
        // A Cubieboard2 with Ethernet, mostly idle (logging the date once a
        // minute), on a typical power bank ran for 9 hours in the paper.
        let b = Battery::typical_power_bank();
        let hours =
            b.runtime_hours_duty_cycle(BoardKind::Cubieboard2, &[PowerComponent::Ethernet], 0.05);
        assert!((7.0..16.0).contains(&hours), "hours={hours}");
        // Reported observation was 9h — our model must be the same order and
        // not wildly optimistic.
        assert!(hours > 9.0 * 0.7);
    }

    #[test]
    fn heavier_load_shortens_runtime() {
        let b = Battery::typical_power_bank();
        let idle = b.runtime_hours(BoardKind::Cubieboard2, PowerState::Idle, &[]);
        let busy = b.runtime_hours(BoardKind::Cubieboard2, PowerState::Spinning, &[]);
        assert!(idle > busy);
        let with_ssd = b.runtime_hours(
            BoardKind::Cubieboard2,
            PowerState::Idle,
            &[PowerComponent::Ssd],
        );
        assert!(idle > with_ssd);
    }

    #[test]
    fn nuc_runtime_is_much_shorter() {
        let b = Battery::typical_power_bank();
        let arm = b.runtime_hours(BoardKind::Cubieboard2, PowerState::Idle, &[]);
        let nuc = b.runtime_hours(BoardKind::IntelNuc, PowerState::Idle, &[]);
        assert!(arm > 3.0 * nuc);
    }

    #[test]
    fn constructors_clamp_inputs() {
        let b = Battery::new(-5.0, 2.0);
        assert_eq!(b.capacity_wh, 0.0);
        assert_eq!(b.efficiency, 1.0);
        assert_eq!(b.usable_wh(), 0.0);
        let b2 = Battery::new(10.0, 0.5);
        assert!((b2.usable_wh() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn duty_cycle_bounds() {
        let b = Battery::typical_power_bank();
        let all_idle = b.runtime_hours_duty_cycle(BoardKind::Cubieboard2, &[], 0.0);
        let all_busy = b.runtime_hours_duty_cycle(BoardKind::Cubieboard2, &[], 1.0);
        let idle = b.runtime_hours(BoardKind::Cubieboard2, PowerState::Idle, &[]);
        let busy = b.runtime_hours(BoardKind::Cubieboard2, PowerState::Spinning, &[]);
        assert!((all_idle - idle).abs() < 1e-9);
        assert!((all_busy - busy).abs() < 1e-9);
    }
}
