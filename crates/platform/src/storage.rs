//! Storage device models.
//!
//! Figure 9b shows Docker container start time dominated by disk I/O on a
//! 10 MB/s SD card, improving (but still ≥600 ms) on an ext4 loopback inside
//! tmpfs. The HTTP persistent-queue throughput experiment (§4) is bound by
//! its backing store. These models capture per-device throughput and access
//! latency so those experiments reproduce the same orderings.

use jitsu_sim::{Distribution, SimDuration, SimRng};

/// The kinds of storage used in the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StorageKind {
    /// The boards' SD card (~10 MB/s sequential, high and variable access
    /// latency).
    SdCard,
    /// An external USB solid-state drive.
    Ssd,
    /// An ext4 loopback file inside a RAM-backed tmpfs.
    TmpfsLoopback,
    /// The on-board eMMC flash used for unikernel images.
    Mmc,
}

impl StorageKind {
    /// All storage kinds.
    pub const ALL: [StorageKind; 4] = [
        StorageKind::SdCard,
        StorageKind::Ssd,
        StorageKind::TmpfsLoopback,
        StorageKind::Mmc,
    ];

    /// Build the device model.
    pub fn device(self) -> StorageDevice {
        StorageDevice::new(self)
    }

    /// Label used in Figure 9b's legend.
    pub fn label(self) -> &'static str {
        match self {
            StorageKind::SdCard => "ext4 on SD card",
            StorageKind::Ssd => "ext4 on SSD",
            StorageKind::TmpfsLoopback => "ext4 on tmpfs",
            StorageKind::Mmc => "internal MMC flash",
        }
    }
}

/// A storage device with a simple throughput + access-latency cost model.
#[derive(Debug, Clone)]
pub struct StorageDevice {
    /// Which device this is.
    pub kind: StorageKind,
    /// Sustained sequential read throughput in MB/s.
    pub read_mbps: f64,
    /// Sustained sequential write throughput in MB/s.
    pub write_mbps: f64,
    /// Per-operation access latency distribution (seek/erase/FTL overhead).
    pub access_latency: Distribution,
    /// Probability that a metadata-heavy operation fails with an I/O error —
    /// the paper observed "buffer IO, ext4 and VFS errors in a significant
    /// fraction of tests" for the devicemapper-on-tmpfs configuration.
    pub io_error_rate: f64,
}

impl StorageDevice {
    /// Build the calibrated model for a device kind.
    pub fn new(kind: StorageKind) -> StorageDevice {
        match kind {
            StorageKind::SdCard => StorageDevice {
                kind,
                read_mbps: 10.0,
                write_mbps: 6.0,
                access_latency: Distribution::LogNormal {
                    median: SimDuration::from_millis(2),
                    sigma: 0.6,
                },
                io_error_rate: 0.0,
            },
            StorageKind::Ssd => StorageDevice {
                kind,
                read_mbps: 180.0,
                write_mbps: 120.0,
                access_latency: Distribution::LogNormal {
                    median: SimDuration::from_micros(150),
                    sigma: 0.4,
                },
                io_error_rate: 0.0,
            },
            StorageKind::TmpfsLoopback => StorageDevice {
                kind,
                read_mbps: 400.0,
                write_mbps: 350.0,
                access_latency: Distribution::LogNormal {
                    median: SimDuration::from_micros(40),
                    sigma: 0.3,
                },
                // The loopback-on-tmpfs workaround is fragile on ARM (§4).
                io_error_rate: 0.08,
            },
            StorageKind::Mmc => StorageDevice {
                kind,
                read_mbps: 25.0,
                write_mbps: 12.0,
                access_latency: Distribution::LogNormal {
                    median: SimDuration::from_millis(1),
                    sigma: 0.5,
                },
                io_error_rate: 0.0,
            },
        }
    }

    /// Time to read `bytes` sequentially, including one access latency draw.
    pub fn read_time(&self, bytes: usize, rng: &mut SimRng) -> SimDuration {
        let transfer = SimDuration::from_secs_f64(bytes as f64 / (self.read_mbps * 1e6));
        self.access_latency.sample(rng) + transfer
    }

    /// Time to write `bytes` sequentially, including one access latency draw.
    pub fn write_time(&self, bytes: usize, rng: &mut SimRng) -> SimDuration {
        let transfer = SimDuration::from_secs_f64(bytes as f64 / (self.write_mbps * 1e6));
        self.access_latency.sample(rng) + transfer
    }

    /// Time for a metadata-heavy random I/O burst of `ops` operations, each
    /// reading roughly `bytes_per_op` — the pattern produced by mounting
    /// container layers and materialising a union filesystem.
    pub fn random_io_time(&self, ops: usize, bytes_per_op: usize, rng: &mut SimRng) -> SimDuration {
        let mut total = SimDuration::ZERO;
        for _ in 0..ops {
            total += self.read_time(bytes_per_op, rng);
        }
        total
    }

    /// Draw whether a metadata-heavy operation hits an I/O error.
    pub fn draw_io_error(&self, rng: &mut SimRng) -> bool {
        rng.chance(self.io_error_rate)
    }

    /// Sustained throughput in Mb/s (bits) for the throughput experiment.
    pub fn read_throughput_mbps(&self) -> f64 {
        self.read_mbps * 8.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from_u64(1)
    }

    #[test]
    fn sd_card_matches_paper_throughput() {
        let sd = StorageKind::SdCard.device();
        assert!((sd.read_mbps - 10.0).abs() < 1e-9, "paper: 10MB/s SD card");
        assert_eq!(sd.kind, StorageKind::SdCard);
        assert_eq!(sd.io_error_rate, 0.0);
    }

    #[test]
    fn device_ordering_sd_slowest_tmpfs_fastest() {
        let mut r = rng();
        let mb = 1024 * 1024;
        let sd = StorageKind::SdCard.device().read_time(10 * mb, &mut r);
        let ssd = StorageKind::Ssd.device().read_time(10 * mb, &mut r);
        let tmpfs = StorageKind::TmpfsLoopback
            .device()
            .read_time(10 * mb, &mut r);
        assert!(sd > ssd, "SD card slower than SSD");
        assert!(ssd > tmpfs, "SSD slower than tmpfs");
        // 10 MB at 10 MB/s is about a second.
        assert!(sd.as_millis() >= 990 && sd.as_millis() < 1300, "sd={sd}");
    }

    #[test]
    fn write_slower_than_read_on_flash() {
        let mut r = rng();
        let sd = StorageKind::SdCard.device();
        let read = sd.read_time(1024 * 1024, &mut r);
        let write = sd.write_time(1024 * 1024, &mut r);
        assert!(
            write > read - SimDuration::from_millis(3),
            "writes should not be faster"
        );
    }

    #[test]
    fn random_io_accumulates_access_latency() {
        let mut r = rng();
        let sd = StorageKind::SdCard.device();
        let one = sd.read_time(4096, &mut r);
        let many = sd.random_io_time(100, 4096, &mut r);
        assert!(
            many > one * 50,
            "100 random ops must cost much more than one"
        );
    }

    #[test]
    fn tmpfs_loopback_has_error_rate() {
        let tmpfs = StorageKind::TmpfsLoopback.device();
        assert!(tmpfs.io_error_rate > 0.0);
        let mut r = rng();
        let errors = (0..10_000).filter(|_| tmpfs.draw_io_error(&mut r)).count();
        let rate = errors as f64 / 10_000.0;
        assert!((rate - tmpfs.io_error_rate).abs() < 0.02, "rate={rate}");
        assert!(!StorageKind::SdCard.device().draw_io_error(&mut r));
    }

    #[test]
    fn labels_and_throughput() {
        assert_eq!(StorageKind::SdCard.label(), "ext4 on SD card");
        assert_eq!(StorageKind::TmpfsLoopback.label(), "ext4 on tmpfs");
        assert_eq!(StorageKind::ALL.len(), 4);
        // 10 MB/s is 80 Mb/s — just above what the disk-bound HTTP queue
        // service achieved (57.92 Mb/s) once protocol overheads are added.
        assert!((StorageKind::SdCard.device().read_throughput_mbps() - 80.0).abs() < 1e-9);
    }
}
