//! # platform — hardware platform models
//!
//! The paper evaluates Jitsu on two inexpensive ARM boards (Cubieboard2 and
//! Cubietruck), compares against a 2.4 GHz quad-core AMD x86-64 server for
//! boot-time experiments, and against an Intel Haswell NUC for power. This
//! crate models those platforms so the rest of the reproduction can be
//! parameterised by board: CPU speed scale factors, memory, NIC speed,
//! storage devices (SD card, SSD, tmpfs, on-board MMC), the component power
//! model behind Table 1 and the battery-runtime observation of §4.
//!
//! The numbers here are calibration constants taken from the paper itself
//! (e.g. ARM ≈ 6× slower than the x86 server for domain construction,
//! 10 MB/s SD card, Table 1's wattages); they are data, not measurements of
//! the host this code runs on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod battery;
pub mod board;
pub mod power;
pub mod storage;

pub use battery::Battery;
pub use board::{Arch, Board, BoardKind};
pub use power::{PowerComponent, PowerModel, PowerState};
pub use storage::{StorageDevice, StorageKind};
