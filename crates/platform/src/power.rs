//! The component power model behind Table 1.
//!
//! The paper measures each board with a custom USB power meter in two CPU
//! states (idle, spinning in a busy loop) and with two optional components
//! attached (Ethernet, an external SSD). We reproduce Table 1 from an
//! additive component model calibrated to the published operating points, so
//! the benchmark harness can regenerate the table and examples can estimate
//! power for arbitrary configurations.

use crate::board::BoardKind;

/// CPU activity state during a measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PowerState {
    /// Just Xen and a dom0, no guest activity.
    Idle,
    /// All cores spinning in a busy loop (and attached components active).
    Spinning,
}

/// Optional components that add to the power draw.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PowerComponent {
    /// The on-board Ethernet PHY with an active link.
    Ethernet,
    /// An external USB solid-state drive.
    Ssd,
}

/// An additive power model for one platform: base draw per CPU state plus a
/// per-component increment (which may itself differ between idle and active).
#[derive(Debug, Clone, PartialEq)]
pub struct PowerModel {
    /// The platform modelled.
    pub board: BoardKind,
    base_idle_w: f64,
    base_spin_w: f64,
    ethernet_idle_w: f64,
    ethernet_active_w: f64,
    ssd_idle_w: f64,
    ssd_active_w: f64,
}

impl PowerModel {
    /// The calibrated model for a board. Base and component increments are
    /// derived from Table 1 (ARM boards) and the published Haswell NUC
    /// review figures the paper cites.
    pub fn for_board(board: BoardKind) -> PowerModel {
        match board {
            BoardKind::Cubieboard2 => PowerModel {
                board,
                base_idle_w: 1.43,
                base_spin_w: 2.61,
                // 2.10 idle / 2.58 spinning with Ethernet => +0.67 / -0.03;
                // the spinning+Ethernet point in Table 1 is slightly below
                // spinning alone (measurement noise); we keep the published
                // deltas.
                ethernet_idle_w: 2.10 - 1.43,
                ethernet_active_w: 2.58 - 2.61,
                ssd_idle_w: 3.36 - 1.43,
                ssd_active_w: 4.49 - 2.61,
            },
            BoardKind::Cubietruck => PowerModel {
                board,
                base_idle_w: 1.72,
                base_spin_w: 2.86,
                ethernet_idle_w: 2.58 - 1.72,
                ethernet_active_w: 3.76 - 2.86,
                ssd_idle_w: 3.92 - 1.72,
                ssd_active_w: 5.51 - 2.86,
            },
            // The NUC review the paper cites reports 6.84 W idle and 27.02 W
            // under load; Ethernet and storage are integrated, so component
            // increments are zero.
            BoardKind::IntelNuc => PowerModel {
                board,
                base_idle_w: 6.84,
                base_spin_w: 27.02,
                ethernet_idle_w: 0.0,
                ethernet_active_w: 0.0,
                ssd_idle_w: 0.0,
                ssd_active_w: 0.0,
            },
            // The x86 server is not part of Table 1; model it as a typical
            // quad-core server so examples can still reason about it.
            BoardKind::X86Server => PowerModel {
                board,
                base_idle_w: 45.0,
                base_spin_w: 110.0,
                ethernet_idle_w: 2.0,
                ethernet_active_w: 3.0,
                ssd_idle_w: 2.0,
                ssd_active_w: 4.0,
            },
        }
    }

    /// Predicted power draw in watts for a CPU state and set of attached
    /// components.
    pub fn watts(&self, state: PowerState, components: &[PowerComponent]) -> f64 {
        let mut w = match state {
            PowerState::Idle => self.base_idle_w,
            PowerState::Spinning => self.base_spin_w,
        };
        for c in components {
            w += match (state, c) {
                (PowerState::Idle, PowerComponent::Ethernet) => self.ethernet_idle_w,
                (PowerState::Spinning, PowerComponent::Ethernet) => self.ethernet_active_w,
                (PowerState::Idle, PowerComponent::Ssd) => self.ssd_idle_w,
                (PowerState::Spinning, PowerComponent::Ssd) => self.ssd_active_w,
            };
        }
        w
    }

    /// The rows of Table 1 for this board: `(idle W, spinning W, description)`
    /// for the four configurations the paper lists.
    pub fn table1_rows(&self) -> Vec<(f64, f64, String)> {
        let name = BoardKind::board(self.board).name;
        let configs: [(&str, Vec<PowerComponent>); 4] = [
            ("", vec![]),
            (" +Ethernet", vec![PowerComponent::Ethernet]),
            (" +SSD", vec![PowerComponent::Ssd]),
            (
                " +SSD+Ethernet",
                vec![PowerComponent::Ssd, PowerComponent::Ethernet],
            ),
        ];
        configs
            .iter()
            .map(|(suffix, comps)| {
                (
                    self.watts(PowerState::Idle, comps),
                    self.watts(PowerState::Spinning, comps),
                    format!("{name}{suffix}"),
                )
            })
            .collect()
    }

    /// Energy in joules consumed over `seconds` at a given state.
    pub fn energy_joules(
        &self,
        state: PowerState,
        components: &[PowerComponent],
        seconds: f64,
    ) -> f64 {
        self.watts(state, components) * seconds.max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 0.02
    }

    #[test]
    fn cubieboard2_matches_table1() {
        let m = PowerModel::for_board(BoardKind::Cubieboard2);
        assert!(close(m.watts(PowerState::Idle, &[]), 1.43));
        assert!(close(m.watts(PowerState::Spinning, &[]), 2.61));
        assert!(close(
            m.watts(PowerState::Idle, &[PowerComponent::Ethernet]),
            2.10
        ));
        assert!(close(
            m.watts(PowerState::Spinning, &[PowerComponent::Ethernet]),
            2.58
        ));
        assert!(close(
            m.watts(PowerState::Idle, &[PowerComponent::Ssd]),
            3.36
        ));
        assert!(close(
            m.watts(PowerState::Spinning, &[PowerComponent::Ssd]),
            4.49
        ));
        assert!(close(
            m.watts(
                PowerState::Idle,
                &[PowerComponent::Ssd, PowerComponent::Ethernet]
            ),
            4.03
        ));
    }

    #[test]
    fn cubietruck_matches_table1() {
        let m = PowerModel::for_board(BoardKind::Cubietruck);
        assert!(close(m.watts(PowerState::Idle, &[]), 1.72));
        assert!(close(m.watts(PowerState::Spinning, &[]), 2.86));
        assert!(close(
            m.watts(PowerState::Idle, &[PowerComponent::Ethernet]),
            2.58
        ));
        assert!(close(
            m.watts(PowerState::Spinning, &[PowerComponent::Ssd]),
            5.51
        ));
    }

    #[test]
    fn nuc_draws_far_more_than_arm_boards() {
        let nuc = PowerModel::for_board(BoardKind::IntelNuc);
        let cb2 = PowerModel::for_board(BoardKind::Cubieboard2);
        assert!(close(nuc.watts(PowerState::Idle, &[]), 6.84));
        assert!(close(nuc.watts(PowerState::Spinning, &[]), 27.02));
        // Even the fully loaded Cubietruck stays well under the idle NUC x4.
        assert!(
            nuc.watts(PowerState::Spinning, &[])
                > 4.0 * cb2.watts(PowerState::Spinning, &[PowerComponent::Ethernet])
        );
    }

    #[test]
    fn ssd_roughly_doubles_idle_power() {
        // §4: "The SSD almost doubled power usage."
        for b in [BoardKind::Cubieboard2, BoardKind::Cubietruck] {
            let m = PowerModel::for_board(b);
            let idle = m.watts(PowerState::Idle, &[]);
            let with_ssd = m.watts(PowerState::Idle, &[PowerComponent::Ssd]);
            let ratio = with_ssd / idle;
            assert!((1.9..2.6).contains(&ratio), "{b:?} ratio={ratio}");
        }
    }

    #[test]
    fn table1_rows_cover_four_configs() {
        let rows = PowerModel::for_board(BoardKind::Cubieboard2).table1_rows();
        assert_eq!(rows.len(), 4);
        assert!(rows[0].2.contains("Cubieboard2"));
        assert!(rows[3].2.contains("+SSD+Ethernet"));
        assert!(close(rows[3].0, 4.03));
        assert!(close(rows[3].1, 4.46));
    }

    #[test]
    fn energy_accumulates_over_time() {
        let m = PowerModel::for_board(BoardKind::Cubieboard2);
        let j = m.energy_joules(PowerState::Idle, &[], 3600.0);
        assert!(close(j / 3600.0, 1.43));
        assert_eq!(m.energy_joules(PowerState::Idle, &[], -5.0), 0.0);
    }
}
