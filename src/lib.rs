//! # jitsu-repro — a reproduction of *Jitsu: Just-In-Time Summoning of Unikernels* (NSDI 2015)
//!
//! This facade crate re-exports the workspace's public API so examples,
//! integration tests and downstream users have a single dependency. The
//! pieces:
//!
//! | Crate | Role |
//! |-------|------|
//! | [`sim`] | virtual time, deterministic RNG, metrics, report rendering |
//! | [`xenstore`] | the transactional store with the three reconciliation engines (Figure 3) |
//! | [`xen`] | the simulated hypervisor substrate: domains, grants, event channels, devices, toolstack (Figure 4) |
//! | [`conduit`] | vchan shared-memory channels and named rendezvous (§3.2) |
//! | [`netstack`] | the memory-safe Ethernet/ARP/IPv4/ICMP/UDP/TCP/DNS/HTTP stack |
//! | [`unikernel`] | MirageOS-style images, boot pipelines and appliances |
//! | [`platform`] | boards, storage, power and battery models (Table 1) |
//! | [`baselines`] | Docker, inetd and Linux-VM baselines (Figure 9b) |
//! | [`security`] | the CVE dataset and Jitsu-impact classification (Table 2) |
//! | [`jitsu`] | the directory service, launcher, Synjitsu and jitsud (Figures 6 and 9a) |
//!
//! ## Quickstart
//!
//! ```
//! use jitsu_repro::prelude::*;
//!
//! // One ARM board, one personal web site, summoned on first request.
//! let config = JitsuConfig::new("family.name")
//!     .with_service(ServiceConfig::http_site("alice.family.name", Ipv4Addr::new(192, 168, 1, 20)));
//! let mut jitsud = Jitsud::new(config, BoardKind::Cubieboard2.board(), 42);
//! let report = jitsud
//!     .cold_start_request("alice.family.name", Ipv4Addr::new(192, 168, 1, 100), "/")
//!     .unwrap();
//! assert_eq!(report.http_status, 200);
//! assert!(report.http_response_time.as_millis() < 450);
//! ```

#![forbid(unsafe_code)]

pub use baselines;
pub use conduit;
pub use jitsu;
pub use jitsu_sim as sim;
pub use netstack;
pub use platform;
pub use security;
pub use unikernel;
pub use xen_sim as xen;
pub use xenstore;

/// The types most programs need, in one import.
pub mod prelude {
    pub use crate::jitsu::concurrent::{
        ConcurrentJitsud, HandoffStats, LifecyclePhase, StormMetrics, StormSim,
    };
    pub use crate::jitsu::config::{JitsuConfig, Protocol, ServiceConfig};
    pub use crate::jitsu::directory::{DirectoryAction, DirectoryService, ServicePhase};
    pub use crate::jitsu::handoff::{HandoffCoordinator, HandoffPhase};
    pub use crate::jitsu::jitsud::{ColdStartMode, ColdStartReport, Jitsud, RequestOutcome};
    pub use crate::jitsu::launcher::Launcher;
    pub use crate::jitsu::synjitsu::Synjitsu;
    pub use crate::netstack::dns::DnsMessage;
    pub use crate::netstack::http::{HttpRequest, HttpResponse};
    pub use crate::netstack::ipv4::Ipv4Addr;
    pub use crate::netstack::MacAddr;
    pub use crate::platform::{
        Board, BoardKind, PowerComponent, PowerModel, PowerState, StorageKind,
    };
    pub use crate::sim::{
        Domain, DomainCtx, DomainId, Scheduler, ShardedSim, Sim, SimDuration, SimRng, SimTime,
    };
    pub use crate::unikernel::appliance::{QueueAppliance, StaticSiteAppliance};
    pub use crate::unikernel::image::UnikernelImage;
    pub use crate::xen::toolstack::{BootOptimisations, Toolstack};
    pub use crate::xenstore::{DomId, EngineKind, XenStore};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_compose() {
        let board = BoardKind::Cubieboard2.board();
        assert!(board.is_embedded());
        let xs = XenStore::new(EngineKind::JitsuMerge);
        assert_eq!(xs.engine_kind(), EngineKind::JitsuMerge);
        let img = UnikernelImage::mirage("smoke");
        assert_eq!(img.memory_mib, 16);
    }
}
