//! `bench_snapshot` — record the repository's performance trajectory.
//!
//! Runs the hot-path suite from `bench::snapshot` and writes a
//! schema-versioned `BENCH_<date>.json`; with `--compare <baseline>` it
//! also gates against a previous snapshot, exiting nonzero on a wall-time
//! regression past tolerance (exit 2) or on *any* drift in the
//! deterministic virtual metrics (exit 3).
//!
//! This binary is the only place in the workspace that reads the host
//! clock. Everything under `crates/` is fenced off from `Instant` and
//! `SystemTime` by jitsu-lint rule D002; the harness lives in `src/bin/`
//! (the config's `wall_clock_sanctioned_dirs`) precisely so it can time
//! the simulated workloads *from outside* the simulation.
//!
//! ```text
//! bench_snapshot [--out <path>] [--compare <baseline>]
//!                [--wall-tolerance <pct>] [--quick]
//! ```

#![forbid(unsafe_code)]
// Sanctioned wall-clock use: clippy.toml disallows Instant/SystemTime
// workspace-wide to keep them out of the simulated crates; this harness
// binary is the designated exception (see jitsu-lint D002's
// wall_clock_sanctioned_dirs).
#![allow(clippy::disallowed_methods, clippy::disallowed_types)]

use bench::snapshot::{
    collect, compare, BenchConfig, Snapshot, WallTimer, DEFAULT_WALL_TOLERANCE_PCT, SCHEMA_VERSION,
};
use std::process::ExitCode;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// The real timer: wall-clock seconds around one run of the workload.
struct InstantTimer;

impl WallTimer for InstantTimer {
    fn time(&self, work: &mut dyn FnMut()) -> f64 {
        let start = Instant::now();
        work();
        start.elapsed().as_secs_f64()
    }
}

/// Today's UTC date as `YYYY-MM-DD`, from the epoch-day count (civil
/// calendar conversion; no external time crates in this tree).
fn today() -> String {
    let secs = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let days = (secs / 86_400) as i64;
    // Days-to-civil, via the era decomposition over 400-year cycles.
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

/// `git rev-parse HEAD`, or `"unknown"` outside a repository.
fn git_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

struct Args {
    out: Option<String>,
    baseline: Option<String>,
    wall_tolerance_pct: f64,
    quick: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        out: None,
        baseline: None,
        wall_tolerance_pct: DEFAULT_WALL_TOLERANCE_PCT,
        quick: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => {
                args.out = Some(it.next().ok_or("--out needs a path")?);
            }
            "--compare" => {
                args.baseline = Some(it.next().ok_or("--compare needs a baseline path")?);
            }
            "--wall-tolerance" => {
                let raw = it.next().ok_or("--wall-tolerance needs a percentage")?;
                args.wall_tolerance_pct = raw
                    .parse::<f64>()
                    .map_err(|_| format!("invalid tolerance `{raw}`"))?;
                if !args.wall_tolerance_pct.is_finite() || args.wall_tolerance_pct < 0.0 {
                    return Err(format!(
                        "tolerance must be a non-negative percentage, got `{raw}`"
                    ));
                }
            }
            "--quick" => args.quick = true,
            "--help" | "-h" => {
                return Err(
                    "usage: bench_snapshot [--out <path>] [--compare <baseline>] \
                     [--wall-tolerance <pct>] [--quick]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(1);
        }
    };

    let cfg = if args.quick {
        BenchConfig::quick()
    } else {
        BenchConfig::default()
    };
    let date = today();
    eprintln!(
        "bench_snapshot: collecting {} suite run ({} wall reps per metric)…",
        if args.quick { "quick" } else { "full" },
        cfg.wall_reps
    );
    let metrics = collect(&InstantTimer, &cfg);
    let snapshot = Snapshot {
        schema_version: SCHEMA_VERSION,
        git_sha: git_sha(),
        date: date.clone(),
        metrics,
    };

    let out_path = args.out.unwrap_or_else(|| format!("BENCH_{date}.json"));
    let doc = snapshot.to_json();
    if let Err(e) = std::fs::write(&out_path, &doc) {
        eprintln!("bench_snapshot: cannot write {out_path}: {e}");
        return ExitCode::from(1);
    }
    println!(
        "wrote {out_path} ({} metrics, schema v{}, {})",
        snapshot.metrics.len(),
        snapshot.schema_version,
        snapshot.git_sha
    );
    for m in &snapshot.metrics {
        println!(
            "  {:32} {:>16.4} {:10} [{}]",
            m.key(),
            m.value,
            m.unit,
            match m.kind {
                bench::snapshot::MetricKind::Virtual => "virtual",
                bench::snapshot::MetricKind::Wall => "wall",
            }
        );
    }

    let Some(baseline_path) = args.baseline else {
        return ExitCode::SUCCESS;
    };
    let baseline_text = match std::fs::read_to_string(&baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench_snapshot: cannot read baseline {baseline_path}: {e}");
            return ExitCode::from(1);
        }
    };
    let baseline = match Snapshot::from_json(&baseline_text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("bench_snapshot: malformed baseline {baseline_path}: {e}");
            return ExitCode::from(1);
        }
    };
    let report = compare(&snapshot, &baseline, args.wall_tolerance_pct);
    println!(
        "\ncompare vs {baseline_path} (wall tolerance {:.0}%):",
        args.wall_tolerance_pct
    );
    print!("{}", report.render());
    ExitCode::from(report.verdict().exit_code() as u8)
}
