//! Integration tests for the `bench_snapshot` harness: golden schema,
//! run-to-run determinism of the virtual section, the `--compare` exit
//! codes through the real binary, and the committed `BENCH_BASELINE.json`
//! staying in lockstep with the tree.
//!
//! No wall clock here: collection uses [`bench::snapshot::NullTimer`], and
//! the binary (which does read the clock, sanctioned in `src/bin/`) is
//! driven as a subprocess.

use bench::json::{self, Value};
use bench::snapshot::{
    collect, compare, BenchConfig, MetricKind, NullTimer, Snapshot, Verdict, SCHEMA_VERSION,
};
use std::path::PathBuf;
use std::process::Command;

fn snap(metrics: Vec<bench::snapshot::Metric>) -> Snapshot {
    Snapshot {
        schema_version: SCHEMA_VERSION,
        git_sha: "test".to_string(),
        date: "1970-01-01".to_string(),
        metrics,
    }
}

/// A scratch path unique to this test process.
fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("bench_snapshot_{}_{name}", std::process::id()))
}

#[test]
fn golden_schema_every_metric_carries_the_full_field_set() {
    let snapshot = snap(collect(&NullTimer, &BenchConfig::quick()));
    let doc = json::parse(&snapshot.to_json()).expect("snapshot renders valid JSON");
    for key in ["schema_version", "tool", "git_sha", "date", "metrics"] {
        assert!(doc.get(key).is_some(), "top-level `{key}` missing");
    }
    assert_eq!(doc.get("schema_version").and_then(Value::as_num), Some(1.0));
    assert_eq!(
        doc.get("tool").and_then(Value::as_str),
        Some("bench_snapshot")
    );
    let metrics = doc
        .get("metrics")
        .and_then(Value::as_arr)
        .expect("metrics is an array");
    assert!(!metrics.is_empty());
    for m in metrics {
        for key in [
            "suite",
            "name",
            "unit",
            "kind",
            "direction",
            "value",
            "iterations",
            "dispersion",
        ] {
            assert!(m.get(key).is_some(), "metric field `{key}` missing");
        }
        let kind = m.get("kind").and_then(Value::as_str).expect("kind is str");
        assert!(kind == "virtual" || kind == "wall", "kind = {kind}");
    }
    // Every suite the issue names is present.
    let suites: Vec<&str> = metrics
        .iter()
        .filter_map(|m| m.get("suite").and_then(Value::as_str))
        .collect();
    for suite in [
        "sim_engine",
        "sharded_engine",
        "xenstore_commit",
        "xenstore_snapshot",
        "vchan",
        "frame_path",
        "handoff",
        "cold_start",
    ] {
        assert!(suites.contains(&suite), "suite `{suite}` missing");
    }
}

#[test]
fn two_collections_produce_identical_virtual_sections() {
    let cfg = BenchConfig::quick();
    let a = snap(collect(&NullTimer, &cfg));
    let b = snap(collect(&NullTimer, &cfg));
    assert_eq!(a.virtual_section(), b.virtual_section());
    // With the NullTimer the wall values are zero too, so the entire
    // documents must be byte-identical.
    assert_eq!(a.to_json(), b.to_json());
    assert_eq!(compare(&a, &b, 10.0).verdict(), Verdict::Pass);
}

#[test]
fn committed_baseline_virtual_metrics_match_the_current_tree() {
    let baseline_path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("BENCH_BASELINE.json");
    let text = std::fs::read_to_string(&baseline_path)
        .expect("BENCH_BASELINE.json is committed at the repository root");
    let mut baseline = Snapshot::from_json(&text).expect("baseline parses");
    let mut current = snap(collect(&NullTimer, &BenchConfig::default()));
    // The NullTimer zeroes wall metrics, so gate on the virtual section
    // only — the binary's `--compare` covers the wall half.
    baseline.metrics.retain(|m| m.kind == MetricKind::Virtual);
    current.metrics.retain(|m| m.kind == MetricKind::Virtual);
    let report = compare(&current, &baseline, 10.0);
    assert_eq!(
        report.verdict(),
        Verdict::Pass,
        "virtual metrics drifted from BENCH_BASELINE.json — if the change \
         is intentional, refresh the baseline with \
         `cargo run --release --bin bench_snapshot -- --out BENCH_BASELINE.json`:\n{}",
        report.render()
    );
}

/// Run the real binary with `args`, returning (exit code, stdout).
fn run_binary(args: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_bench_snapshot"))
        .args(args)
        .output()
        .expect("bench_snapshot binary runs");
    (
        out.status.code().expect("binary exits normally"),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

/// Adjust one metric's value in a rendered snapshot document.
fn rewrite_metric(doc: &str, name: &str, f: impl Fn(f64) -> f64) -> String {
    let mut v = json::parse(doc).expect("document parses");
    let Value::Obj(ref mut top) = v else {
        panic!("top level is an object")
    };
    let Some(Value::Arr(metrics)) = top.get_mut("metrics") else {
        panic!("metrics array present")
    };
    let mut hit = false;
    for m in metrics.iter_mut() {
        let Value::Obj(fields) = m else { continue };
        if fields.get("name").and_then(Value::as_str) == Some(name) {
            let old = fields
                .get("value")
                .and_then(Value::as_num)
                .expect("metric has a numeric value");
            fields.insert("value".to_string(), Value::Num(f(old)));
            hit = true;
        }
    }
    assert!(hit, "metric `{name}` found in document");
    v.render()
}

#[test]
fn binary_compare_distinguishes_pass_regress_and_drift() {
    let out = scratch("out.json");
    let out_s = out.to_str().expect("utf-8 temp path");

    // Produce a snapshot; exit 0, file parses.
    let (code, _) = run_binary(&["--quick", "--out", out_s]);
    assert_eq!(code, 0);
    let doc = std::fs::read_to_string(&out).expect("snapshot file written");
    Snapshot::from_json(&doc).expect("snapshot file parses");

    // Same tree vs its own snapshot: virtual metrics are identical by
    // determinism; a huge wall tolerance absorbs timer noise → exit 0.
    // (Every run below passes `--out` so no default-named BENCH_<date>.json
    // lands in the repository root.)
    let rerun = scratch("rerun.json");
    let rerun_s = rerun.to_str().expect("utf-8 temp path");
    let (code, _) = run_binary(&[
        "--quick",
        "--out",
        rerun_s,
        "--compare",
        out_s,
        "--wall-tolerance",
        "100000",
    ]);
    assert_eq!(code, 0, "self-compare must pass");

    // Perturb one virtual metric in the baseline → any drift is exit 3.
    let drifted = scratch("drift.json");
    std::fs::write(&drifted, rewrite_metric(&doc, "xs_merged", |v| v + 1.0))
        .expect("drifted baseline written");
    let (code, stdout) = run_binary(&[
        "--quick",
        "--out",
        rerun_s,
        "--compare",
        drifted.to_str().expect("utf-8 temp path"),
        "--wall-tolerance",
        "100000",
    ]);
    assert_eq!(code, 3, "virtual drift must exit 3:\n{stdout}");
    assert!(stdout.contains("VIRTUAL DRIFT"));

    // Shrink a lower-is-better wall baseline to ~zero → the current run
    // regresses past any tolerance → exit 2.
    let fast = scratch("fast.json");
    std::fs::write(&fast, rewrite_metric(&doc, "cell_seconds", |_| 1e-12))
        .expect("fast baseline written");
    let (code, stdout) = run_binary(&[
        "--quick",
        "--out",
        rerun_s,
        "--compare",
        fast.to_str().expect("utf-8 temp path"),
        "--wall-tolerance",
        "100000",
    ]);
    assert_eq!(code, 2, "wall regression must exit 2:\n{stdout}");
    assert!(stdout.contains("WALL REGRESSION"));

    for p in [out, rerun, drifted, fast] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn binary_rejects_bad_usage() {
    let (code, _) = run_binary(&["--no-such-flag"]);
    assert_eq!(code, 1);
    // `--out` keeps the pre-compare snapshot out of the repository root
    // (the binary intentionally writes it before the baseline is read).
    let bad = scratch("bad_usage.json");
    let (code, _) = run_binary(&[
        "--quick",
        "--out",
        bad.to_str().expect("utf-8 temp path"),
        "--compare",
        "/nonexistent/baseline.json",
    ]);
    assert_eq!(code, 1);
    let _ = std::fs::remove_file(bad);
}
