//! Integration tests for the zero-copy frame path: a packet travelling
//! bridge → vchan ring → unikernel is copied exactly once, at ring ingress.
//! Everything downstream of the drain — ethernet/IP/TCP parsing, in-order
//! delivery, HTTP reassembly — hands out `FrameBuf` views of that single
//! allocation, and the tests here prove it with `shares_allocation`
//! assertions on real end-to-end exchanges.

use jitsu_repro::conduit::vchan::{Side, VchanPair};
use jitsu_repro::netstack::http::{HttpRequest, HttpResponse};
use jitsu_repro::netstack::iface::{IfaceEvent, Interface};
use jitsu_repro::netstack::{FrameBuf, MacAddr};
use jitsu_repro::prelude::*;
use jitsu_repro::unikernel::appliance::StaticSiteAppliance;
use jitsu_repro::unikernel::image::UnikernelImage;
use jitsu_repro::unikernel::instance::UnikernelInstance;
use jitsu_repro::xen::event_channel::EventChannelTable;
use jitsu_repro::xen::grant_table::GrantTable;

const SERVER_MAC: MacAddr = MacAddr([2, 0, 0, 0, 0, 0x20]);
const SERVER_IP: Ipv4Addr = Ipv4Addr::new(192, 168, 1, 20);
const CLIENT_MAC: MacAddr = MacAddr([2, 0, 0, 0, 0, 0x64]);
const CLIENT_IP: Ipv4Addr = Ipv4Addr::new(192, 168, 1, 100);

fn unikernel() -> UnikernelInstance {
    UnikernelInstance::new(
        UnikernelImage::mirage("alice"),
        SERVER_MAC,
        SERVER_IP,
        80,
        Box::new(StaticSiteAppliance::new("alice")),
        99,
    )
}

/// Every TCP payload the unikernel's responses deliver to the client must be
/// an O(1) view of the Ethernet frame it arrived in — no hidden copy between
/// the wire and the application.
#[test]
fn response_bytes_reach_the_client_as_views_of_the_arriving_frames() {
    let mut server = unikernel();
    let mut client = Interface::new(CLIENT_MAC, CLIENT_IP);
    client.add_arp_entry(SERVER_IP, SERVER_MAC);
    server.iface.add_arp_entry(CLIENT_IP, CLIENT_MAC);

    let mut to_server = vec![client.tcp_connect(SERVER_IP, 80)];
    let local_port = 49152;
    let mut sent_request = false;
    let mut response = Vec::new();
    let mut data_events = 0usize;
    for _ in 0..32 {
        if to_server.is_empty() {
            break;
        }
        let mut to_client = Vec::new();
        for f in to_server.drain(..) {
            let (out, _) = server.handle_frame(&f);
            to_client.extend(out);
        }
        for frame in to_client {
            let (out, events) = client.handle_frame(&frame);
            to_server.extend(out);
            for ev in events {
                match ev {
                    IfaceEvent::TcpConnected { remote, .. } if !sent_request => {
                        sent_request = true;
                        let req = HttpRequest::get("/", "alice").emit();
                        let f = client.tcp_send(remote, local_port, &req).unwrap();
                        to_server.push(f);
                    }
                    IfaceEvent::TcpData { data, .. } => {
                        data_events += 1;
                        assert!(
                            data.shares_allocation(&frame),
                            "delivered payload must be a view of the frame it \
                             arrived in"
                        );
                        response.extend_from_slice(&data);
                    }
                    _ => {}
                }
            }
        }
    }
    assert!(data_events > 0, "the exchange must deliver payload bytes");
    let response = FrameBuf::from_vec(response);
    let parsed = HttpResponse::parse(&response).unwrap().unwrap();
    assert_eq!(parsed.status, 200);
    assert!(String::from_utf8_lossy(&parsed.body).contains("alice"));
}

/// Push every client→server frame through a real vchan ring and hand the
/// drained buffer straight to the server interface: the request payload the
/// server sees shares the allocation created at ring egress, so the only
/// copy on the path is the ring transfer itself.
#[test]
fn a_request_crossing_the_vchan_ring_is_copied_only_at_the_ring() {
    let mut grants = GrantTable::new();
    let mut evtchn = EventChannelTable::new();
    let mut pair = VchanPair::establish(&mut grants, &mut evtchn, DomId(3), DomId(7)).unwrap();

    let mut server = Interface::new(SERVER_MAC, SERVER_IP);
    server.listen_tcp(80);
    let mut client = Interface::new(CLIENT_MAC, CLIENT_IP);
    client.add_arp_entry(SERVER_IP, SERVER_MAC);
    server.add_arp_entry(CLIENT_IP, CLIENT_MAC);

    let request = HttpRequest::get("/", "alice").emit();
    let mut to_server = vec![client.tcp_connect(SERVER_IP, 80)];
    let local_port = 49152;
    let mut sent_request = false;
    let mut ring_bytes = 0u64;
    let mut server_payload = Vec::new();
    for _ in 0..32 {
        if to_server.is_empty() {
            break;
        }
        let mut to_client = Vec::new();
        for f in to_server.drain(..) {
            // The ring transfer: the frame's bytes are copied into the ring
            // by `write` and materialised exactly once by `read`.
            let mut offset = 0;
            while offset < f.len() {
                offset += pair.write(Side::Client, &f[offset..], &mut evtchn).unwrap();
            }
            ring_bytes += f.len() as u64;
            let wire = pair.read(Side::Server, usize::MAX).unwrap();
            assert_eq!(&wire, &f, "the ring is loss-free and order-preserving");
            let (out, events) = server.handle_frame(&wire);
            to_client.extend(out);
            for ev in events {
                if let IfaceEvent::TcpData { data, .. } = ev {
                    assert!(
                        data.shares_allocation(&wire),
                        "server-side payload must be a view of the buffer \
                         drained from the ring"
                    );
                    server_payload.extend_from_slice(&data);
                }
            }
        }
        for f in to_client {
            let (out, events) = client.handle_frame(&f);
            to_server.extend(out);
            for ev in events {
                if let IfaceEvent::TcpConnected { remote, .. } = ev {
                    if !sent_request {
                        sent_request = true;
                        let f = client.tcp_send(remote, local_port, &request).unwrap();
                        to_server.push(f);
                    }
                }
            }
        }
    }
    assert_eq!(
        FrameBuf::from_vec(server_payload),
        request,
        "the request survives the ring byte-identically"
    );
    assert_eq!(
        pair.bytes_to_server(),
        ring_bytes,
        "every byte crossed the ring exactly once"
    );
}

/// The ring drain itself hands back a single shared buffer when the transfer
/// fit in one drain, and a zero-byte drain does not allocate at all.
#[test]
fn ring_drains_are_single_allocations_and_empty_drains_are_free() {
    let mut grants = GrantTable::new();
    let mut evtchn = EventChannelTable::new();
    let mut pair = VchanPair::establish(&mut grants, &mut evtchn, DomId(3), DomId(7)).unwrap();

    let frame = [0xABu8; 600];
    let mut offset = 0;
    while offset < frame.len() {
        offset += pair
            .write(Side::Client, &frame[offset..], &mut evtchn)
            .unwrap();
    }
    let drained = pair.read(Side::Server, usize::MAX).unwrap();
    assert!(drained.has_allocation(), "a non-empty drain owns its bytes");
    assert_eq!(&drained, &frame[..]);
    // A view of the drain shares the drain's allocation: downstream parsing
    // never re-copies.
    assert!(drained.slice(14..).shares_allocation(&drained));

    let empty = pair.read(Side::Server, usize::MAX).unwrap();
    assert!(empty.is_empty());
    assert!(
        !empty.has_allocation(),
        "an idle ring poll must not allocate"
    );
}
