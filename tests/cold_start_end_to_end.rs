//! Cross-crate integration tests of the paper's headline flow: DNS-triggered
//! summoning with Synjitsu masking boot latency (Figures 6 and 9a).

use jitsu_repro::prelude::*;

fn config_with(names: &[&str]) -> JitsuConfig {
    let mut config = JitsuConfig::new("family.name");
    for (i, name) in names.iter().enumerate() {
        config = config.with_service(ServiceConfig::http_site(
            name,
            Ipv4Addr::new(192, 168, 1, 20 + i as u8),
        ));
    }
    config
}

const CLIENT: Ipv4Addr = Ipv4Addr::new(192, 168, 1, 100);

#[test]
fn cold_start_serves_the_buffered_request_through_the_handoff() {
    let mut jitsud = Jitsud::new(
        config_with(&["alice.family.name"]),
        BoardKind::Cubieboard2.board(),
        1,
    );
    let report = jitsud
        .cold_start_request("alice.family.name", CLIENT, "/")
        .unwrap();
    assert_eq!(report.http_status, 200);
    assert!(report.proxied);
    assert_eq!(report.syn_retransmissions, 0);
    // Paper envelope: DNS answered in milliseconds, full response at roughly
    // the cold-boot latency (≈300–350 ms), far below the 1 s retransmission
    // that would otherwise dominate.
    assert!(report.dns_response_time < SimDuration::from_millis(10));
    assert!(report.http_response_time < SimDuration::from_millis(450));
    assert!(report.http_response_time > SimDuration::from_millis(150));
    // The handoff flow left its trail: proxy handshake before unikernel adoption.
    assert!(jitsud
        .tracer
        .happens_before("handshake completed", "adopted proxied connections"));
}

#[test]
fn synjitsu_disabled_falls_back_to_tcp_retransmission() {
    let mut jitsud = Jitsud::new(
        config_with(&["alice.family.name"]).without_synjitsu(),
        BoardKind::Cubieboard2.board(),
        2,
    );
    let report = jitsud
        .cold_start_request("alice.family.name", CLIENT, "/")
        .unwrap();
    assert_eq!(report.http_status, 200);
    assert!(!report.proxied);
    assert!(report.syn_retransmissions >= 1);
    assert!(report.http_response_time > SimDuration::from_secs(1));
}

#[test]
fn warm_requests_hit_the_running_unikernel_in_milliseconds() {
    let mut jitsud = Jitsud::new(
        config_with(&["alice.family.name"]),
        BoardKind::Cubieboard2.board(),
        3,
    );
    jitsud
        .cold_start_request("alice.family.name", CLIENT, "/")
        .unwrap();
    for _ in 0..5 {
        let warm = jitsud
            .warm_request("alice.family.name", CLIENT, "/")
            .unwrap();
        assert_eq!(warm.http_status, 200);
        assert!(warm.response_time < SimDuration::from_millis(15));
    }
}

#[test]
fn multiple_tenants_are_isolated_domains_on_one_board() {
    let names = ["alice.family.name", "bob.family.name", "carol.family.name"];
    let mut jitsud = Jitsud::new(config_with(&names), BoardKind::Cubieboard2.board(), 4);
    for name in names {
        let report = jitsud.cold_start_request(name, CLIENT, "/").unwrap();
        assert_eq!(report.http_status, 200, "{name}");
    }
    assert_eq!(jitsud.running_count(), 3);
    // Each tenant got its own response body (served by its own appliance).
    let a = jitsud
        .warm_request("alice.family.name", CLIENT, "/")
        .unwrap();
    let b = jitsud.warm_request("bob.family.name", CLIENT, "/").unwrap();
    assert_eq!(a.http_status, 200);
    assert_eq!(b.http_status, 200);
}

#[test]
fn x86_cold_starts_are_an_order_of_magnitude_faster_than_arm() {
    let mut arm = Jitsud::new(
        config_with(&["alice.family.name"]),
        BoardKind::Cubieboard2.board(),
        5,
    );
    let mut x86 = Jitsud::new(
        config_with(&["alice.family.name"]),
        BoardKind::X86Server.board(),
        5,
    );
    let arm_report = arm
        .cold_start_request("alice.family.name", CLIENT, "/")
        .unwrap();
    let x86_report = x86
        .cold_start_request("alice.family.name", CLIENT, "/")
        .unwrap();
    let ratio =
        arm_report.http_response_time.as_secs_f64() / x86_report.http_response_time.as_secs_f64();
    assert!(ratio > 4.0, "ARM/x86 cold-start ratio = {ratio:.1}");
    assert!(x86_report.http_response_time < SimDuration::from_millis(80));
}

#[test]
fn idle_retirement_frees_memory_for_other_tenants() {
    let names = ["alice.family.name", "bob.family.name"];
    let mut config = config_with(&names);
    config.idle_timeout = Some(SimDuration::from_secs(60));
    let mut jitsud = Jitsud::new(config, BoardKind::Cubieboard2.board(), 6);
    jitsud
        .cold_start_request("alice.family.name", CLIENT, "/")
        .unwrap();
    assert!(jitsud.is_running("alice.family.name"));
    jitsud.advance_clock(SimDuration::from_secs(300));
    let retired = jitsud.retire_idle();
    assert_eq!(retired.len(), 1);
    assert!(!jitsud.is_running("alice.family.name"));
    // And it can be resummoned.
    let again = jitsud
        .cold_start_request("alice.family.name", CLIENT, "/")
        .unwrap();
    assert_eq!(again.http_status, 200);
}
