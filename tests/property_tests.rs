//! Property-based tests (proptest) over the core data structures and
//! invariants: packet codecs round-trip, the XenStore tree respects
//! permissions and transaction atomicity, the TCB handoff format is
//! loss-free, and the vchan ring never loses or reorders bytes.

use jitsu_repro::netstack::checksum;
use jitsu_repro::netstack::dns::DnsMessage;
use jitsu_repro::netstack::http::{HttpRequest, HttpResponse};
use jitsu_repro::netstack::icmp::IcmpEcho;
use jitsu_repro::netstack::ipv4::{Ipv4Packet, Protocol};
use jitsu_repro::netstack::tcp::{
    seq_ge, seq_gt, seq_le, seq_lt, Connection, Listener, Tcb, TcpFlags, TcpSegment, TcpState,
};
use jitsu_repro::netstack::udp::UdpDatagram;
use jitsu_repro::prelude::*;
use jitsu_repro::xenstore::Path as XsPath;
use proptest::prelude::*;

fn arb_ipv4() -> impl Strategy<Value = Ipv4Addr> {
    any::<[u8; 4]>().prop_map(Ipv4Addr)
}

fn arb_xs_label() -> impl Strategy<Value = String> {
    // The XenStore charset includes '.', but the components "." and ".."
    // are rejected by Path::parse as relative — exclude exactly those two.
    "[a-zA-Z0-9_.@:-]{1,16}".prop_filter("relative components rejected by design", |l| {
        l != "." && l != ".."
    })
}

fn arb_tcp_state() -> impl Strategy<Value = TcpState> {
    prop_oneof![
        Just(TcpState::Listen),
        Just(TcpState::SynReceived),
        Just(TcpState::SynSent),
        Just(TcpState::Established),
        Just(TcpState::FinWait1),
        Just(TcpState::FinWait2),
        Just(TcpState::CloseWait),
        Just(TcpState::LastAck),
        Just(TcpState::Closed),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---------------- packet codecs round-trip -------------------------

    #[test]
    fn ipv4_round_trips(src in arb_ipv4(), dst in arb_ipv4(), ttl in 1u8..=255,
                        proto in 0u8..=255, payload in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut packet = Ipv4Packet::new(src, dst, Protocol::from_u8(proto), payload);
        packet.ttl = ttl;
        let parsed = Ipv4Packet::parse(&packet.emit()).unwrap();
        prop_assert_eq!(parsed, packet);
    }

    #[test]
    fn ipv4_detects_any_single_byte_corruption_in_the_header(
        src in arb_ipv4(), dst in arb_ipv4(),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        corrupt_at in 0usize..20, flip in 1u8..=255)
    {
        let packet = Ipv4Packet::new(src, dst, Protocol::Tcp, payload);
        let mut bytes = packet.emit().to_vec();
        bytes[corrupt_at] ^= flip;
        // Either the parse fails (checksum/shape) or — if the corrupted field
        // was one the parser does not interpret strictly (e.g. flags) — the
        // parse succeeds; it must never panic.
        let _ = Ipv4Packet::parse(&bytes.into());
    }

    #[test]
    fn udp_round_trips(src in arb_ipv4(), dst in arb_ipv4(), sport in 1u16..=65535, dport in 1u16..=65535,
                       payload in proptest::collection::vec(any::<u8>(), 0..256)) {
        let datagram = UdpDatagram::new(sport, dport, payload);
        let parsed = UdpDatagram::parse(&datagram.emit(src, dst), src, dst).unwrap();
        prop_assert_eq!(parsed, datagram);
    }

    #[test]
    fn tcp_segment_round_trips(src in arb_ipv4(), dst in arb_ipv4(), sport in 1u16..=65535,
                               dport in 1u16..=65535, seq in any::<u32>(), ack in any::<u32>(),
                               payload in proptest::collection::vec(any::<u8>(), 0..256)) {
        let seg = TcpSegment { src_port: sport, dst_port: dport, seq, ack,
                               flags: TcpFlags::PSH_ACK, window: 8192, payload: payload.into() };
        let parsed = TcpSegment::parse(&seg.emit(src, dst), src, dst).unwrap();
        prop_assert_eq!(parsed, seg);
    }

    #[test]
    fn tcp_segment_round_trips_for_every_flag_combination(
        src in arb_ipv4(), dst in arb_ipv4(), sport in 1u16..=65535, dport in 1u16..=65535,
        seq in any::<u32>(), ack in any::<u32>(), flag_bits in 0u8..32, window in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..512))
    {
        // All 32 FIN/SYN/RST/PSH/ACK combinations, not just the named ones.
        let flags = TcpFlags::from_bits(flag_bits);
        // The 5 flag bits encode losslessly.
        prop_assert_eq!(flags.to_bits(), flag_bits);
        let seg = TcpSegment { src_port: sport, dst_port: dport, seq, ack, flags, window,
                               payload: payload.into() };
        let parsed = TcpSegment::parse(&seg.emit(src, dst), src, dst).unwrap();
        prop_assert_eq!(&parsed, &seg);
        prop_assert_eq!(parsed.seq_len(),
                        seg.payload.len() as u32
                            + u32::from(flags.syn) + u32::from(flags.fin));
    }

    #[test]
    fn tcp_checksum_is_invariant_under_payload_splitting(
        src in arb_ipv4(), dst in arb_ipv4(), seq in any::<u32>(),
        payload in proptest::collection::vec(any::<u8>(), 2..512),
        split_hint in any::<usize>())
    {
        // The Internet checksum is a one's-complement sum of 16-bit words,
        // so accumulating two word-aligned chunks must equal accumulating
        // the whole buffer at once — the property Synjitsu relies on when
        // a buffered request is replayed as differently-sized segments.
        let k = (split_hint % (payload.len() / 2)) * 2;
        let whole = checksum::finish(checksum::partial(0, &payload));
        let split = checksum::finish(
            checksum::partial(checksum::partial(0, &payload[..k]), &payload[k..]));
        prop_assert_eq!(whole, split);

        // Splitting one segment into two (second seq advanced by the first
        // chunk's length) yields two independently checksum-valid segments
        // whose payloads reassemble into the original bytes.
        let first = TcpSegment { payload: payload[..k].into(),
                                 ..TcpSegment::control(49152, 80, seq, 1, TcpFlags::ACK) };
        let second = TcpSegment { payload: payload[k..].into(),
                                  ..TcpSegment::control(49152, 80,
                                                        seq.wrapping_add(k as u32), 1,
                                                        TcpFlags::PSH_ACK) };
        let a = TcpSegment::parse(&first.emit(src, dst), src, dst).unwrap();
        let b = TcpSegment::parse(&second.emit(src, dst), src, dst).unwrap();
        prop_assert_eq!(b.seq.wrapping_sub(a.seq) as usize, a.payload.len());
        let mut reassembled = a.payload.to_vec();
        reassembled.extend_from_slice(&b.payload);
        prop_assert_eq!(reassembled, payload);
    }

    #[test]
    fn icmp_round_trips(ident in any::<u16>(), seq in any::<u16>(),
                        payload in proptest::collection::vec(any::<u8>(), 0..1400)) {
        let echo = IcmpEcho::request(ident, seq, payload);
        prop_assert_eq!(IcmpEcho::parse(&echo.emit()).unwrap(), echo.clone());
        let reply = echo.reply();
        prop_assert_eq!(IcmpEcho::parse(&reply.emit()).unwrap(), reply);
    }

    #[test]
    fn dns_queries_round_trip(labels in proptest::collection::vec("[a-z0-9]{1,12}", 1..5), id in any::<u16>()) {
        let name = labels.join(".");
        let query = DnsMessage::query(id, &name);
        let parsed = DnsMessage::parse(&query.emit()).unwrap();
        prop_assert_eq!(parsed.queried_name(), Some(name.as_str()));
        let answer = DnsMessage::answer(&query, Ipv4Addr::new(192, 168, 1, 20), 30);
        let parsed = DnsMessage::parse(&answer.emit()).unwrap();
        prop_assert_eq!(parsed.answers.len(), 1);
    }

    #[test]
    fn http_request_round_trips(path_seg in "[a-zA-Z0-9_./-]{1,40}", host in "[a-z0-9.]{1,30}",
                                body in proptest::collection::vec(any::<u8>(), 0..256)) {
        let path = format!("/{}", path_seg.trim_start_matches('/'));
        let request = if body.is_empty() {
            HttpRequest::get(&path, &host)
        } else {
            HttpRequest::post(&path, &host, body)
        };
        let parsed = HttpRequest::parse(&request.emit()).unwrap().unwrap();
        prop_assert_eq!(parsed, request);
    }

    #[test]
    fn http_response_round_trips(status in 100u16..=599, body in proptest::collection::vec(any::<u8>(), 0..512)) {
        let response = HttpResponse::with_status(status, "Reason", body);
        let parsed = HttpResponse::parse(&response.emit()).unwrap().unwrap();
        prop_assert_eq!(parsed, response);
    }

    #[test]
    fn parsers_never_panic_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256),
                                      src in arb_ipv4(), dst in arb_ipv4()) {
        let buf = jitsu_repro::netstack::FrameBuf::from_vec(bytes);
        let _ = Ipv4Packet::parse(&buf);
        let _ = TcpSegment::parse(&buf, src, dst);
        let _ = UdpDatagram::parse(&buf, src, dst);
        let _ = IcmpEcho::parse(&buf);
        let _ = DnsMessage::parse(&buf);
        let _ = HttpRequest::parse(&buf);
        let _ = HttpResponse::parse(&buf);
    }

    // ---------------- TCP sequence arithmetic ----------------------------

    #[test]
    fn seq_comparisons_are_a_strict_order_within_half_the_space(
        a in any::<u32>(), d in 1u32..0x7fff_ffff)
    {
        // For any base point `a` — including right at the 2^32 wrap — and
        // any forward distance below half the sequence space, the wrapping
        // comparisons order a before a+d and agree with each other.
        let b = a.wrapping_add(d);
        prop_assert!(seq_lt(a, b));
        prop_assert!(seq_le(a, b));
        prop_assert!(seq_gt(b, a));
        prop_assert!(seq_ge(b, a));
        prop_assert!(!seq_lt(b, a));
        prop_assert!(!seq_gt(a, b));
        // Reflexivity of the non-strict forms.
        prop_assert!(seq_le(a, a) && seq_ge(a, a) && !seq_lt(a, a) && !seq_gt(a, a));
    }

    #[test]
    fn data_crosses_the_isn_wraparound_without_loss_or_duplication(
        isn_offset in 0u32..32, chunks in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..64), 1..8),
        dup_index in any::<usize>())
    {
        // An ISN a few bytes below u32::MAX guarantees the payload stream
        // crosses the 2^32 boundary mid-transfer.
        let isn = u32::MAX - isn_offset;
        let mut listener = Listener::new(Ipv4Addr::new(192, 168, 1, 20), 80, u32::MAX - 70_000);
        let (mut client, syn) =
            Connection::connect(Ipv4Addr::new(192, 168, 1, 100), 51000, Ipv4Addr::new(192, 168, 1, 20), 80, isn);
        let (mut server, syn_ack) = listener.on_syn(Ipv4Addr::new(192, 168, 1, 100), &syn).unwrap();
        let acks = client.on_segment(&syn_ack);
        server.on_segment(&acks[0]);
        prop_assert!(client.is_established() && server.is_established());

        // Send every chunk, re-delivering one of the segments a second time
        // (a retransmission racing the cumulative ACK).
        let mut sent = Vec::new();
        let mut segments = Vec::new();
        for chunk in &chunks {
            let seg = client.send(&chunk[..]);
            server.on_segment(&seg);
            segments.push(seg);
            sent.extend_from_slice(chunk);
        }
        let dup = &segments[dup_index % segments.len()];
        let responses = server.on_segment(dup);
        // Duplicates are re-ACKed, never re-buffered.
        prop_assert_eq!(responses.len(), 1);

        // Exactly the sent bytes arrive, once, in order — even though the
        // sequence numbers wrapped.
        prop_assert_eq!(server.take_received(), sent);
        prop_assert_eq!(server.tcb.rcv_nxt, client.tcb.snd_nxt);
    }

    #[test]
    fn cumulative_acks_across_the_wrap_are_accepted_and_stale_acks_ignored(
        isn_offset in 0u32..8, payload in proptest::collection::vec(any::<u8>(), 16..128))
    {
        let isn = u32::MAX - isn_offset;
        let mut listener = Listener::new(Ipv4Addr::new(192, 168, 1, 20), 80, 7);
        let (mut client, syn) =
            Connection::connect(Ipv4Addr::new(192, 168, 1, 100), 51000, Ipv4Addr::new(192, 168, 1, 20), 80, isn);
        let (mut server, syn_ack) = listener.on_syn(Ipv4Addr::new(192, 168, 1, 100), &syn).unwrap();
        let acks = client.on_segment(&syn_ack);
        server.on_segment(&acks[0]);

        // A stale ACK captured before the data is sent…
        let stale = TcpSegment::control(80, 51000, server.tcb.snd_nxt, server.tcb.rcv_nxt, TcpFlags::ACK);
        let seg = client.send(&payload[..]);
        let responses = server.on_segment(&seg);
        client.on_segment(&responses[0]);
        // …the post-wrap cumulative ACK landed:
        prop_assert_eq!(client.tcb.snd_una, client.tcb.snd_nxt);
        // …and replaying the stale ACK must not regress snd_una (with plain
        // `u32` ordering it would, because the stale ACK is numerically
        // larger than the wrapped snd_una).
        client.on_segment(&stale);
        prop_assert_eq!(client.tcb.snd_una, client.tcb.snd_nxt);
    }

    // ---------------- TCB handoff format --------------------------------

    #[test]
    fn tcb_sexp_serialisation_is_lossless(state in arb_tcp_state(), local in arb_ipv4(), remote in arb_ipv4(),
                                          lport in 1u16..=65535, rport in 1u16..=65535,
                                          isn in any::<u32>(), snd in any::<u32>(), una in any::<u32>(), rcv in any::<u32>(),
                                          buffered in proptest::collection::vec(any::<u8>(), 0..128)) {
        let tcb = Tcb { state, local_ip: local, local_port: lport, remote_ip: remote, remote_port: rport,
                        isn, snd_nxt: snd, snd_una: una, rcv_nxt: rcv, buffered };
        let parsed = Tcb::from_sexp(&tcb.to_sexp()).unwrap();
        prop_assert_eq!(parsed, tcb);
    }

    // ---------------- XenStore invariants --------------------------------

    #[test]
    fn xenstore_paths_round_trip(labels in proptest::collection::vec(arb_xs_label(), 1..6)) {
        let text = format!("/{}", labels.join("/"));
        let path = XsPath::parse(&text).unwrap();
        prop_assert_eq!(path.to_string(), text);
        prop_assert_eq!(path.depth(), labels.len());
    }

    #[test]
    fn xenstore_write_then_read_returns_the_value(labels in proptest::collection::vec("[a-z0-9]{1,8}", 1..5),
                                                  value in proptest::collection::vec(any::<u8>(), 0..128)) {
        let mut xs = XenStore::new(EngineKind::JitsuMerge);
        let path = format!("/{}", labels.join("/"));
        xs.write(DomId::DOM0, None, &path, &value).unwrap();
        prop_assert_eq!(xs.read(DomId::DOM0, None, &path).unwrap(), value);
        // Every ancestor now exists and lists its child.
        let parsed = XsPath::parse(&path).unwrap();
        if let Some(parent) = parsed.parent() {
            let children = xs.directory(DomId::DOM0, None, &parent.to_string()).unwrap();
            prop_assert!(children.contains(&parsed.basename().unwrap().to_string()));
        }
    }

    #[test]
    fn aborted_transactions_never_leak_state(keys in proptest::collection::vec("[a-z]{1,6}", 1..6)) {
        let mut xs = XenStore::new(EngineKind::JitsuMerge);
        let tx = xs.transaction_start(DomId::DOM0).unwrap();
        for key in &keys {
            xs.write(DomId::DOM0, Some(tx), &format!("/staging/{}", key), b"tmp").unwrap();
        }
        xs.transaction_end(DomId::DOM0, tx, false).unwrap();
        for key in &keys {
            let leaked = xs.exists(DomId::DOM0, None, &format!("/staging/{}", key)).unwrap();
            prop_assert!(!leaked);
        }
    }

    #[test]
    fn committed_transactions_apply_all_or_nothing_under_conflict(n_keys in 1usize..6) {
        // Two transactions race on the same keys under the serial engine:
        // whichever commits second fails, and none of its writes appear.
        let mut xs = XenStore::new(EngineKind::Serial);
        let t1 = xs.transaction_start(DomId::DOM0).unwrap();
        let t2 = xs.transaction_start(DomId::DOM0).unwrap();
        for i in 0..n_keys {
            xs.write(DomId::DOM0, Some(t1), &format!("/race/k{}", i), b"from-t1").unwrap();
            xs.write(DomId::DOM0, Some(t2), &format!("/race/k{}", i), b"from-t2").unwrap();
        }
        xs.transaction_end(DomId::DOM0, t1, true).unwrap();
        let second = xs.transaction_end(DomId::DOM0, t2, true);
        prop_assert!(second.is_err());
        for i in 0..n_keys {
            let value = xs.read(DomId::DOM0, None, &format!("/race/k{}", i)).unwrap();
            prop_assert_eq!(value, b"from-t1".to_vec());
        }
    }

    // ---------------- persistent tree / commit-time merging --------------

    #[test]
    fn persistent_snapshots_never_see_later_mutations(
        keys in proptest::collection::vec("[a-z0-9]{1,8}", 1..8),
        extra in proptest::collection::vec("[a-z0-9]{1,8}", 1..8))
    {
        use jitsu_repro::xenstore::Tree;
        let mut tree = Tree::new();
        for (i, key) in keys.iter().enumerate() {
            let path = XsPath::parse(&format!("/base/d{}/{}", i % 3, key)).unwrap();
            tree.write(DomId::DOM0, &path, key.as_bytes()).unwrap();
        }
        let snapshot = tree.clone();
        prop_assert!(snapshot.shares_root_with(&tree), "snapshot is O(1)");
        let frozen = snapshot.all_paths();

        // Arbitrary later mutations: overwrites, new subtrees, a removal.
        for (i, key) in extra.iter().enumerate() {
            let path = XsPath::parse(&format!("/later/e{}/{}", i % 3, key)).unwrap();
            tree.write(DomId::DOM0, &path, b"new").unwrap();
        }
        let first = XsPath::parse(&format!("/base/d0/{}", keys[0])).unwrap();
        tree.write(DomId::DOM0, &first, b"overwritten").unwrap();
        let _ = tree.rm(DomId::DOM0, &XsPath::parse("/base/d1").unwrap());

        // The snapshot is bit-for-bit what it was.
        prop_assert_eq!(snapshot.all_paths(), frozen);
        prop_assert_eq!(snapshot.read(DomId::DOM0, &first).unwrap(),
                        keys[0].as_bytes().to_vec());
        prop_assert!(!snapshot.exists(&XsPath::parse("/later").unwrap()));
    }

    #[test]
    fn disjoint_path_transactions_always_merge_and_match_a_serial_order(
        a_keys in proptest::collection::vec("[a-z0-9]{1,8}", 1..6),
        b_keys in proptest::collection::vec("[a-z0-9]{1,8}", 1..6))
    {
        use jitsu_repro::xenstore::Tree;
        // Two transactions write disjoint subtrees, fully overlapped.
        let mut xs = XenStore::new(EngineKind::JitsuMerge);
        let ta = xs.transaction_start(DomId::DOM0).unwrap();
        let tb = xs.transaction_start(DomId::DOM0).unwrap();
        for key in &a_keys {
            xs.write(DomId::DOM0, Some(ta), &format!("/merge_a/{}", key), b"A").unwrap();
        }
        for key in &b_keys {
            xs.write(DomId::DOM0, Some(tb), &format!("/merge_b/{}", key), b"B").unwrap();
        }
        xs.transaction_end(DomId::DOM0, ta, true).unwrap();
        // The second commit lands on a moved base and must merge, not abort.
        xs.transaction_end(DomId::DOM0, tb, true).unwrap();
        prop_assert_eq!(xs.stats().conflicts, 0);
        prop_assert!(xs.stats().merged >= 1);

        // The merged result equals the serial execution A then B.
        let mut serial = XenStore::new(EngineKind::JitsuMerge);
        for key in &a_keys {
            serial.write(DomId::DOM0, None, &format!("/merge_a/{}", key), b"A").unwrap();
        }
        for key in &b_keys {
            serial.write(DomId::DOM0, None, &format!("/merge_b/{}", key), b"B").unwrap();
        }
        prop_assert!(Tree::diff(serial.tree(), xs.tree()).is_empty(),
                     "merged state must equal a serial order");
    }

    #[test]
    fn overlapping_write_sets_always_conflict(
        key in "[a-z0-9]{1,8}", a_val in any::<u8>(), b_val in any::<u8>())
    {
        for engine in [EngineKind::Merge, EngineKind::JitsuMerge] {
            let mut xs = XenStore::new(engine);
            let ta = xs.transaction_start(DomId::DOM0).unwrap();
            let tb = xs.transaction_start(DomId::DOM0).unwrap();
            xs.write(DomId::DOM0, Some(ta), &format!("/shared/{}", key), &[a_val]).unwrap();
            xs.write(DomId::DOM0, Some(tb), &format!("/shared/{}", key), &[b_val]).unwrap();
            xs.transaction_end(DomId::DOM0, ta, true).unwrap();
            let second = xs.transaction_end(DomId::DOM0, tb, true);
            prop_assert!(second.is_err(), "{:?}: write-write overlap must abort", engine);
            // First writer's value survives.
            let value = xs.read(DomId::DOM0, None, &format!("/shared/{}", key)).unwrap();
            prop_assert_eq!(value, vec![a_val]);
        }
    }

    #[test]
    fn reads_of_missing_paths_conflict_with_a_concurrent_create(key in "[a-z0-9]{1,8}") {
        for engine in [EngineKind::Merge, EngineKind::JitsuMerge] {
            let mut xs = XenStore::new(engine);
            let t = xs.transaction_start(DomId::DOM0).unwrap();
            // The transaction observes the path to be absent...
            prop_assert!(!xs.exists(DomId::DOM0, Some(t), &format!("/race/{}", key)).unwrap());
            xs.write(DomId::DOM0, Some(t), "/race_winner", b"me").unwrap();
            // ...and a concurrent commit creates exactly that path.
            xs.write(DomId::DOM0, None, &format!("/race/{}", key), b"them").unwrap();
            prop_assert!(xs.transaction_end(DomId::DOM0, t, true).is_err(),
                         "{:?}: absence is a dependency", engine);
            prop_assert!(!xs.exists(DomId::DOM0, None, "/race_winner").unwrap());
        }
    }

    #[test]
    fn guests_can_never_read_other_guests_private_keys(owner in 1u32..200, reader in 1u32..200,
                                                       key in "[a-z0-9]{1,10}") {
        prop_assume!(owner != reader);
        let mut xs = XenStore::new(EngineKind::JitsuMerge);
        let home = format!("/local/domain/{}", owner);
        xs.mkdir(DomId::DOM0, None, &home).unwrap();
        xs.set_perms(DomId::DOM0, None, &home, jitsu_repro::xenstore::Permissions::owned_by(DomId(owner))).unwrap();
        let secret_path = format!("{}/{}", home, key);
        xs.write(DomId(owner), None, &secret_path, b"secret").unwrap();
        let foreign_read = xs.read(DomId(reader), None, &secret_path);
        let owner_read = xs.read(DomId(owner), None, &secret_path);
        prop_assert!(foreign_read.is_err());
        prop_assert!(owner_read.is_ok());
    }

    // ---------------- metrics: percentile edges ---------------------------

    #[test]
    fn percentile_matches_an_independent_sorted_reference(
        values in proptest::collection::vec(-1.0e9f64..1.0e9, 1..200),
        pct in -50.0f64..150.0)
    {
        use jitsu_repro::sim::metrics::percentile;
        // Reference: clamp the request, then interpolate over an explicitly
        // sorted copy — written independently of the production code path.
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let p = pct.clamp(0.0, 100.0);
        let expected = if p <= 0.0 {
            sorted[0]
        } else if p >= 100.0 {
            sorted[sorted.len() - 1]
        } else {
            let rank = p / 100.0 * (sorted.len() - 1) as f64;
            let lo = rank.floor() as usize;
            let frac = rank - lo as f64;
            if frac == 0.0 {
                sorted[lo]
            } else {
                sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac
            }
        };
        let got = percentile(&values, pct);
        prop_assert_eq!(got.to_bits(), expected.to_bits());
        // And the result always lies inside the observed range.
        prop_assert!(sorted[0] <= got && got <= sorted[sorted.len() - 1]);
    }

    #[test]
    fn percentile_is_monotone_and_exact_at_both_ends(
        values in proptest::collection::vec(-1.0e6f64..1.0e6, 1..100),
        a in 0.0f64..=100.0, b in 0.0f64..=100.0)
    {
        use jitsu_repro::sim::metrics::percentile;
        let (lo_p, hi_p) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(percentile(&values, lo_p) <= percentile(&values, hi_p));
        let mut sorted = values.clone();
        sorted.sort_by(|x, y| x.total_cmp(y));
        let min = sorted[0];
        let max = sorted[sorted.len() - 1];
        // 0 and 100 return the extreme elements bit-exactly (no
        // interpolation residue), and out-of-range requests clamp to them.
        prop_assert_eq!(percentile(&values, 0.0).to_bits(), min.to_bits());
        prop_assert_eq!(percentile(&values, 100.0).to_bits(), max.to_bits());
        prop_assert_eq!(percentile(&values, -3.0).to_bits(), min.to_bits());
        prop_assert_eq!(percentile(&values, 140.0).to_bits(), max.to_bits());
    }

    // ---------------- vchan ring ------------------------------------------

    #[test]
    fn vchan_preserves_byte_streams(chunks in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..600), 1..20)) {
        use jitsu_repro::conduit::vchan::{Side, VchanPair};
        use jitsu_repro::xen::event_channel::EventChannelTable;
        use jitsu_repro::xen::grant_table::GrantTable;

        let mut grants = GrantTable::new();
        let mut evtchn = EventChannelTable::new();
        let mut pair = VchanPair::establish(&mut grants, &mut evtchn, DomId(3), DomId(7)).unwrap();
        let mut sent = Vec::new();
        let mut received = Vec::new();
        for chunk in &chunks {
            let mut offset = 0;
            while offset < chunk.len() {
                match pair.write(Side::Client, &chunk[offset..], &mut evtchn) {
                    Ok(n) => offset += n,
                    Err(_) => {
                        received.extend_from_slice(&pair.read(Side::Server, usize::MAX).unwrap());
                    }
                }
            }
            sent.extend_from_slice(chunk);
        }
        received.extend_from_slice(&pair.read(Side::Server, usize::MAX).unwrap());
        prop_assert_eq!(received, sent);
    }
}
