//! Regression tests for the D001 sweep: every result-producing path that
//! used to iterate a `HashMap` now runs over a `BTreeMap` (or sorts
//! explicitly), so insertion order must never leak into observable output.
//!
//! Each test performs the same set of insertions in two shuffled orders and
//! asserts the rendered output is byte-identical. Before the conversion
//! these would have been flaky under `HashMap`'s per-process SipHash seed;
//! after it they are guaranteed stable, and `jitsu-lint` (rule D001) keeps
//! them that way statically.

use jitsu_repro::prelude::*;

/// `DirectoryService::idle_services` must list reap candidates in the same
/// order no matter which order the services were registered and marked.
#[test]
fn idle_service_listing_is_insertion_order_independent() {
    let names = [
        "zeta.family.name",
        "alice.family.name",
        "mike.family.name",
        "bob.family.name",
        "carol.family.name",
    ];
    let run = |order: &[usize]| {
        let mut config =
            JitsuConfig::new("family.name").with_idle_timeout(SimDuration::from_millis(100));
        for &i in order {
            config = config.with_service(ServiceConfig::http_site(
                names[i],
                Ipv4Addr::new(192, 168, 1, 20 + i as u8),
            ));
        }
        let mut dir = jitsu_repro::jitsu::directory::DirectoryService::new(config);
        for &i in order {
            let t = SimTime::from_millis(i as u64);
            dir.mark_launching(names[i], t);
            dir.mark_ready(names[i], t);
        }
        dir.idle_services(SimTime::from_millis(10_000))
    };
    let forward = run(&[0, 1, 2, 3, 4]);
    let shuffled = run(&[3, 0, 4, 2, 1]);
    assert_eq!(forward, shuffled);
    let mut sorted = forward.clone();
    sorted.sort();
    assert_eq!(forward, sorted, "idle listing is sorted by service name");
}

/// `Interface::connection_keys` must enumerate the connection table in key
/// order regardless of the order connections were opened.
#[test]
fn connection_table_enumeration_is_insertion_order_independent() {
    let remotes = [
        Ipv4Addr::new(10, 0, 0, 9),
        Ipv4Addr::new(10, 0, 0, 2),
        Ipv4Addr::new(10, 0, 0, 7),
        Ipv4Addr::new(10, 0, 0, 4),
    ];
    let run = |order: &[usize]| {
        let mut iface = jitsu_repro::netstack::iface::Interface::new(
            MacAddr([0x06, 0x16, 0x3e, 0, 0, 1]),
            Ipv4Addr::new(10, 0, 0, 1),
        );
        for &i in order {
            // Pin the ephemeral port to the remote's index so the key set is
            // identical across runs and only the insertion order varies.
            iface.set_ephemeral_base(50_000 + i as u16);
            let _syn = iface.tcp_connect(remotes[i], 80);
        }
        iface.connection_keys()
    };
    let forward = run(&[0, 1, 2, 3]);
    let shuffled = run(&[2, 0, 3, 1]);
    assert_eq!(forward, shuffled);
    let mut sorted = forward.clone();
    sorted.sort();
    assert_eq!(forward, sorted, "connection keys enumerate in sorted order");
}

/// XenStore `directory` listings must not depend on the order children were
/// written (DNS-triggered boots race, so jitsud writes arrive shuffled).
#[test]
fn xenstore_directory_listing_is_insertion_order_independent() {
    let children = ["vif", "console", "vbd", "control", "memory"];
    let run = |order: &[usize]| {
        let mut store = XenStore::new(EngineKind::JitsuMerge);
        let dom0 = jitsu_repro::xenstore::DomId(0);
        for &i in order {
            store
                .write(
                    dom0,
                    None,
                    &format!("/local/domain/1/{}", children[i]),
                    b"1",
                )
                .expect("write child");
        }
        store
            .directory(dom0, None, "/local/domain/1")
            .expect("list children")
    };
    let forward = run(&[0, 1, 2, 3, 4]);
    let shuffled = run(&[4, 1, 3, 0, 2]);
    assert_eq!(forward, shuffled);
}
