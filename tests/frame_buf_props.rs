//! Property tests for the zero-copy frame path: `FrameBuf`'s shared-buffer
//! semantics must be observationally identical to the owned `Vec<u8>`
//! behaviour it replaced, and the packet codecs must stay byte-identical
//! whether a payload arrives as an owned buffer or as a view deep inside a
//! larger frame.

use jitsu_repro::netstack::ethernet::{EtherType, EthernetFrame, MacAddr};
use jitsu_repro::netstack::http::HttpRequest;
use jitsu_repro::netstack::icmp::IcmpEcho;
use jitsu_repro::netstack::ipv4::{Ipv4Packet, Protocol};
use jitsu_repro::netstack::tcp::{TcpFlags, TcpSegment};
use jitsu_repro::netstack::udp::UdpDatagram;
use jitsu_repro::netstack::FrameBuf;
use jitsu_repro::prelude::*;
use proptest::prelude::*;

fn arb_ipv4() -> impl Strategy<Value = Ipv4Addr> {
    any::<[u8; 4]>().prop_map(Ipv4Addr)
}

fn arb_mac() -> impl Strategy<Value = MacAddr> {
    any::<[u8; 6]>().prop_map(MacAddr)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ------------- FrameBuf ≡ Vec<u8> observational equality -------------

    #[test]
    fn a_framebuf_observes_exactly_like_the_vec_it_wraps(
        bytes in proptest::collection::vec(any::<u8>(), 0..512))
    {
        let buf = FrameBuf::from_vec(bytes.clone());
        prop_assert_eq!(buf.len(), bytes.len());
        prop_assert_eq!(buf.is_empty(), bytes.is_empty());
        prop_assert_eq!(&buf[..], &bytes[..]);
        prop_assert_eq!(buf.to_vec(), bytes.clone());
        // Equality is symmetric across the owned/shared divide.
        prop_assert_eq!(&buf, &bytes);
        prop_assert_eq!(&bytes, &buf);
        // Cloning shares the allocation instead of copying it.
        let aliased = buf.clone();
        prop_assert!(aliased.shares_allocation(&buf));
    }

    #[test]
    fn slicing_a_framebuf_equals_slicing_the_vec(
        bytes in proptest::collection::vec(any::<u8>(), 1..512),
        a in any::<usize>(), b in any::<usize>())
    {
        let (mut start, mut end) = (a % (bytes.len() + 1), b % (bytes.len() + 1));
        if start > end {
            std::mem::swap(&mut start, &mut end);
        }
        let buf = FrameBuf::from_vec(bytes.clone());
        let view = buf.slice(start..end);
        prop_assert_eq!(&view[..], &bytes[start..end]);
        // A view is O(1): it shares the parent allocation (unless empty,
        // where no allocation needs to be referenced at all).
        if start < end {
            prop_assert!(view.shares_allocation(&buf));
        }
        // Sub-slicing composes like slice-of-slice on the Vec.
        let mid = (end - start) / 2;
        prop_assert_eq!(&view.slice(..mid)[..], &bytes[start..start + mid]);
        prop_assert_eq!(&view.slice(mid..)[..], &bytes[start + mid..end]);
    }

    #[test]
    fn concat_of_any_partition_reassembles_the_original_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..512),
        cuts in proptest::collection::vec(any::<usize>(), 0..6))
    {
        // Split the buffer at arbitrary (sorted, deduped) cut points and
        // re-concatenate the views: the result must be byte-identical.
        let buf = FrameBuf::from_vec(bytes.clone());
        let mut points: Vec<usize> = cuts.iter().map(|c| c % (bytes.len() + 1)).collect();
        points.push(0);
        points.push(bytes.len());
        points.sort_unstable();
        points.dedup();
        let parts: Vec<FrameBuf> = points
            .windows(2)
            .map(|w| buf.slice(w[0]..w[1]))
            .collect();
        let rejoined = FrameBuf::concat(&parts);
        prop_assert_eq!(&rejoined, &bytes);
        // A partition with a single non-empty part concatenates in O(1),
        // still sharing the source allocation.
        if !bytes.is_empty() {
            let whole = FrameBuf::concat(&[buf.slice(..)]);
            prop_assert!(whole.shares_allocation(&buf));
        }
    }

    #[test]
    fn zero_length_buffers_never_hold_an_allocation(
        bytes in proptest::collection::vec(any::<u8>(), 0..64),
        at in any::<usize>())
    {
        let k = at % (bytes.len() + 1);
        let buf = FrameBuf::from_vec(bytes);
        prop_assert!(!FrameBuf::empty().has_allocation());
        prop_assert!(!buf.slice(k..k).has_allocation());
        prop_assert!(!FrameBuf::concat(&[]).has_allocation());
    }

    // ------------- codecs: emit∘parse is the identity on wire bytes ------
    //
    // For each layer: emit a packet, parse it back, emit again — the two
    // wire images must be byte-identical even though the re-emitted payload
    // is a *view* into the first image rather than an owned copy. This is
    // the property that made threading `FrameBuf` through every codec safe.

    #[test]
    fn ethernet_reemits_byte_identically_from_a_parsed_view(
        dst in arb_mac(), src in arb_mac(),
        payload in proptest::collection::vec(any::<u8>(), 0..256))
    {
        let wire = EthernetFrame::new(dst, src, EtherType::Ipv4, payload).emit();
        let parsed = EthernetFrame::parse(&wire).unwrap();
        prop_assert!(parsed.payload.shares_allocation(&wire), "payload is a view");
        prop_assert_eq!(parsed.emit(), wire);
    }

    #[test]
    fn ipv4_reemits_byte_identically_from_a_parsed_view(
        src in arb_ipv4(), dst in arb_ipv4(),
        payload in proptest::collection::vec(any::<u8>(), 0..256))
    {
        let wire = Ipv4Packet::new(src, dst, Protocol::Tcp, payload).emit();
        let parsed = Ipv4Packet::parse(&wire).unwrap();
        prop_assert!(parsed.payload.is_empty() || parsed.payload.shares_allocation(&wire));
        prop_assert_eq!(parsed.emit(), wire);
    }

    #[test]
    fn tcp_reemits_byte_identically_from_a_parsed_view(
        src in arb_ipv4(), dst in arb_ipv4(), seq in any::<u32>(), ack in any::<u32>(),
        payload in proptest::collection::vec(any::<u8>(), 0..256))
    {
        let seg = TcpSegment {
            src_port: 49152,
            dst_port: 80,
            seq,
            ack,
            flags: TcpFlags::PSH_ACK,
            window: 8192,
            payload: payload.into(),
        };
        let wire = seg.emit(src, dst);
        let parsed = TcpSegment::parse(&wire, src, dst).unwrap();
        prop_assert!(parsed.payload.is_empty() || parsed.payload.shares_allocation(&wire));
        prop_assert_eq!(parsed.emit(src, dst), wire);
    }

    #[test]
    fn udp_reemits_byte_identically_from_a_parsed_view(
        src in arb_ipv4(), dst in arb_ipv4(), sport in 1u16..=65535, dport in 1u16..=65535,
        payload in proptest::collection::vec(any::<u8>(), 0..256))
    {
        let wire = UdpDatagram::new(sport, dport, payload).emit(src, dst);
        let parsed = UdpDatagram::parse(&wire, src, dst).unwrap();
        prop_assert!(parsed.payload.is_empty() || parsed.payload.shares_allocation(&wire));
        prop_assert_eq!(parsed.emit(src, dst), wire);
    }

    #[test]
    fn icmp_reemits_byte_identically_from_a_parsed_view(
        ident in any::<u16>(), seq in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..256))
    {
        let wire = IcmpEcho::request(ident, seq, payload).emit();
        let parsed = IcmpEcho::parse(&wire).unwrap();
        prop_assert!(parsed.payload.is_empty() || parsed.payload.shares_allocation(&wire));
        prop_assert_eq!(parsed.emit(), wire);
    }

    #[test]
    fn a_request_parsed_from_a_view_deep_inside_a_frame_round_trips(
        host in "[a-z0-9.]{1,30}",
        body in proptest::collection::vec(any::<u8>(), 1..128),
        prefix in proptest::collection::vec(any::<u8>(), 0..64))
    {
        // Embed an HTTP request at an arbitrary offset inside a larger
        // buffer (as TCP reassembly does) and parse it from the *view*:
        // identical to parsing the owned bytes.
        let request = HttpRequest::post("/submit", &host, body).emit();
        let mut composite = prefix.clone();
        composite.extend_from_slice(&request);
        let composite = FrameBuf::from_vec(composite);
        let view = composite.slice(prefix.len()..);
        prop_assert!(view.shares_allocation(&composite));
        let from_view = HttpRequest::parse(&view).unwrap().unwrap();
        let from_owned = HttpRequest::parse(&request).unwrap().unwrap();
        prop_assert_eq!(from_view, from_owned);
    }
}
