//! Boot-storm stress test: a large, deterministic storm through the
//! concurrent engine, exercising slot contention, coalescing, memory
//! admission, reaping and drain-relaunch re-entry all at once.
//!
//! The heavyweight case is `#[ignore]`d so the default `cargo test` stays
//! snappy; CI runs it via `cargo test -- --include-ignored`. It is fully
//! deterministic — a failure here always reproduces locally with the same
//! command.

use jitsu_repro::jitsu::concurrent::ConcurrentJitsud;
use jitsu_repro::jitsu::config::{JitsuConfig, ServiceConfig};
use jitsu_repro::netstack::ipv4::Ipv4Addr;
use jitsu_repro::platform::BoardKind;
use jitsu_repro::prelude::*;

const SERVICES: usize = 60;
const RATE_PER_SEC: f64 = 32.0;
const WINDOW_SECS: u64 = 30;
const SEED: u64 = 0x5708;

fn storm_config() -> JitsuConfig {
    // 60 × 16 MiB = 960 MiB against 832 MiB of guest memory: the storm
    // crosses the admission limit, so SERVFAIL, reaping and re-entry all
    // occur within one run.
    let mut cfg = JitsuConfig::new("storm.example")
        .with_launch_slots(2)
        .with_idle_timeout(SimDuration::from_secs(2));
    for i in 0..SERVICES {
        let mut svc = ServiceConfig::http_site(
            &format!("svc{i:03}.storm.example"),
            Ipv4Addr::new(192, 168, 2, 20 + i as u8),
        );
        svc.image.memory_mib = 16;
        cfg = cfg.with_service(svc);
    }
    cfg
}

struct StormOutcome {
    queries: u64,
    unknown: u64,
    launches: u64,
    cold_served: u64,
    coalesced: u64,
    warm_hits: u64,
    servfails: u64,
    reaps: u64,
    syn_handoffs: u64,
    ttfb_count: usize,
    p50_bits: u64,
    p99_bits: u64,
    events: u64,
}

fn run_storm() -> StormOutcome {
    let mut sim = ConcurrentJitsud::sim(storm_config(), BoardKind::Cubieboard2.board(), SEED);
    let mut rng = SimRng::seed_from_u64(SEED ^ 0xB007_5708);
    let mut t = 0.0;
    loop {
        t += rng.exponential(1.0 / RATE_PER_SEC);
        if t >= WINDOW_SECS as f64 {
            break;
        }
        let service = rng.index(SERVICES);
        let name = format!("svc{service:03}.storm.example");
        ConcurrentJitsud::inject_query(
            &mut sim,
            SimTime::ZERO + SimDuration::from_secs_f64(t),
            &name,
        );
    }
    sim.run();
    let m = sim.world().metrics();
    StormOutcome {
        queries: m.queries,
        unknown: m.unknown,
        launches: m.launches,
        cold_served: m.cold_served,
        coalesced: m.coalesced,
        warm_hits: m.warm_hits,
        servfails: m.servfails,
        reaps: m.reaps,
        syn_handoffs: m.syn_handoffs,
        ttfb_count: m.ttfb.count(),
        p50_bits: m.ttfb.p50_ms().to_bits(),
        p99_bits: m.ttfb.p99_ms().to_bits(),
        events: sim.events_executed(),
    }
}

/// ~960 arrivals over 30 s of virtual time, past the memory limit. Fast in
/// wall-clock terms (a few seconds) but big enough to hit every lifecycle
/// transition; run explicitly or with `--include-ignored`.
#[test]
#[ignore = "storm stress: run with --include-ignored (CI does)"]
fn large_storm_is_deterministic_and_accounts_for_every_query() {
    let a = run_storm();

    // Every query landed in exactly one bucket, and every parked client
    // was eventually served once its boot completed.
    assert_eq!(a.unknown, 0);
    assert_eq!(
        a.queries,
        a.servfails + a.warm_hits + a.cold_served,
        "quiescence bookkeeping must balance"
    );
    assert_eq!(a.ttfb_count as u64, a.warm_hits + a.cold_served);

    // The storm actually stresses the interesting regimes.
    assert!(a.queries > 700, "queries = {}", a.queries);
    assert!(a.launches > 100, "launches = {}", a.launches);
    assert!(a.servfails > 0, "past the memory limit");
    assert!(a.reaps > 50, "the 2 s TTL must reap continuously");
    assert!(a.coalesced > 0, "duplicates must coalesce");
    assert!(a.syn_handoffs > 0 && a.syn_handoffs <= a.cold_served);
    // Cold starts dominate the tail; a lost-SYN regime (>1 s without
    // Synjitsu) must NOT appear — Synjitsu hides boot latency.
    assert!(f64::from_bits(a.p99_bits) < 1_000.0);

    // Determinism: the identical seed replays the identical storm.
    let b = run_storm();
    assert_eq!(a.queries, b.queries);
    assert_eq!(a.launches, b.launches);
    assert_eq!(a.servfails, b.servfails);
    assert_eq!(a.reaps, b.reaps);
    assert_eq!(a.coalesced, b.coalesced);
    assert_eq!(a.syn_handoffs, b.syn_handoffs);
    assert_eq!(a.p50_bits, b.p50_bits);
    assert_eq!(a.p99_bits, b.p99_bits);
    assert_eq!(a.events, b.events);
}

/// A miniature always-on storm so the suite exercises the engine even
/// without `--include-ignored`.
#[test]
fn small_storm_smoke() {
    let mut sim = ConcurrentJitsud::sim(storm_config(), BoardKind::Cubieboard2.board(), SEED);
    for i in 0..10u64 {
        let name = format!("svc{:03}.storm.example", i % 4);
        ConcurrentJitsud::inject_query(&mut sim, SimTime::from_millis(i * 50), &name);
    }
    sim.run();
    let m = sim.world().metrics();
    assert_eq!(m.queries, 10);
    assert_eq!(m.launches, 4);
    assert_eq!(m.servfails, 0);
    assert_eq!(m.queries, m.warm_hits + m.cold_served);
}
