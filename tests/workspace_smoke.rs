//! Workspace wiring smoke test: every facade re-export resolves to the
//! right member crate, and the headline cold→warm request round-trip runs
//! deterministically from a fixed seed.

use jitsu_repro::prelude::*;

/// One symbol from each of the ten re-exported crates, referenced through
/// the facade paths. Compiling this function is the assertion: if a
/// workspace edge or `[lib] name` mapping regresses, this fails to build.
#[test]
fn facade_reexports_all_resolve() {
    let _sim: jitsu_repro::sim::SimDuration = jitsu_repro::sim::SimDuration::from_millis(1);
    let _xenstore =
        jitsu_repro::xenstore::XenStore::new(jitsu_repro::xenstore::EngineKind::JitsuMerge);
    let _xen = jitsu_repro::xen::grant_table::GrantTable::new();
    let _conduit: Option<jitsu_repro::conduit::vchan::Side> = None;
    let _netstack = jitsu_repro::netstack::ipv4::Ipv4Addr::new(10, 0, 0, 1);
    let _unikernel = jitsu_repro::unikernel::image::UnikernelImage::mirage("smoke");
    let _platform = jitsu_repro::platform::BoardKind::Cubieboard2.board();
    let _baselines: Option<jitsu_repro::baselines::docker::ContainerRuntime> = None;
    let _security = jitsu_repro::security::cve::CVE_DATASET;
    let _jitsu = jitsu_repro::jitsu::config::JitsuConfig::new("family.name");
}

#[test]
fn cold_then_warm_round_trip_is_deterministic() {
    let run = |seed: u64| {
        let config = JitsuConfig::new("family.name").with_service(ServiceConfig::http_site(
            "alice.family.name",
            Ipv4Addr::new(192, 168, 1, 20),
        ));
        let mut jitsud = Jitsud::new(config, BoardKind::Cubieboard2.board(), seed);
        let cold = jitsud
            .cold_start_request("alice.family.name", Ipv4Addr::new(192, 168, 1, 100), "/")
            .unwrap();
        let warm = jitsud
            .warm_request("alice.family.name", Ipv4Addr::new(192, 168, 1, 100), "/")
            .unwrap();
        (
            cold.http_status,
            cold.http_response_time,
            warm.http_status,
            warm.response_time,
        )
    };

    let (cold_status, cold_time, warm_status, warm_time) = run(42);
    assert_eq!(cold_status, 200);
    assert_eq!(warm_status, 200);
    // Warm requests skip the boot pipeline entirely.
    assert!(warm_time < cold_time);

    // Same seed, same virtual-time results, bit for bit.
    assert_eq!(run(42), (cold_status, cold_time, warm_status, warm_time));
}
