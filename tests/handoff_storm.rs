//! Handoff-under-storm integration test: the paper's §3.3.1 zero-drop
//! guarantee, checked at the payload-byte level across a storm of real TCP
//! flows migrated mid-request from Synjitsu to freshly booted unikernels.
//!
//! Deterministic: the storm is a pure function of its seed, so a failure
//! here always reproduces locally with `cargo test --test handoff_storm`.

use jitsu_repro::jitsu::concurrent::ConcurrentJitsud;
use jitsu_repro::jitsu::config::{JitsuConfig, ServiceConfig};
use jitsu_repro::netstack::ipv4::Ipv4Addr;
use jitsu_repro::platform::BoardKind;
use jitsu_repro::prelude::*;

const SERVICES: usize = 16;
const RATE_PER_SEC: f64 = 24.0;
const WINDOW_SECS: u64 = 20;
const SEED: u64 = 0x4A0D;

fn storm_config() -> JitsuConfig {
    // A short idle TTL keeps relaunching the services, so connections keep
    // crossing the Synjitsu → unikernel handoff throughout the run.
    let mut cfg = JitsuConfig::new("handoff.example")
        .with_launch_slots(2)
        .with_idle_timeout(SimDuration::from_secs(1));
    for i in 0..SERVICES {
        let mut svc = ServiceConfig::http_site(
            &format!("svc{i:02}.handoff.example"),
            Ipv4Addr::new(192, 168, 3, 20 + i as u8),
        );
        svc.image.memory_mib = 16;
        cfg = cfg.with_service(svc);
    }
    cfg
}

struct Outcome {
    queries: u64,
    cold_served: u64,
    warm_hits: u64,
    servfails: u64,
    migrated: u64,
    queued_prepare: u64,
    replayed: u64,
    completed: u64,
    dropped_bytes: u64,
    duplicated_bytes: u64,
    latency_count: usize,
    p50_bits: u64,
    p99_bits: u64,
    events: u64,
}

fn run_storm() -> Outcome {
    let mut sim = ConcurrentJitsud::sim(storm_config(), BoardKind::Cubieboard2.board(), SEED);
    let mut rng = SimRng::seed_from_u64(SEED ^ 0x4A0D_0FF5);
    let mut t = 0.0;
    loop {
        t += rng.exponential(1.0 / RATE_PER_SEC);
        if t >= WINDOW_SECS as f64 {
            break;
        }
        let service = rng.index(SERVICES);
        let name = format!("svc{service:02}.handoff.example");
        ConcurrentJitsud::inject_query(
            &mut sim,
            SimTime::ZERO + SimDuration::from_secs_f64(t),
            &name,
        );
    }
    sim.run();
    let m = sim.world().metrics();
    Outcome {
        queries: m.queries,
        cold_served: m.cold_served,
        warm_hits: m.warm_hits,
        servfails: m.servfails,
        migrated: m.handoff.migrated,
        queued_prepare: m.handoff.queued_during_prepare,
        replayed: m.handoff.replayed_after_commit,
        completed: m.handoff.completed,
        dropped_bytes: m.handoff.dropped_bytes,
        duplicated_bytes: m.handoff.duplicated_bytes,
        latency_count: m.handoff.request_latency.count(),
        p50_bits: m.handoff.request_latency.p50_ms().to_bits(),
        p99_bits: m.handoff.request_latency.p99_ms().to_bits(),
        events: sim.events_executed(),
    }
}

#[test]
fn storm_migrates_over_100_connections_with_zero_drop_zero_dup() {
    let a = run_storm();

    // The storm genuinely exercises the handoff at scale.
    assert!(
        a.migrated >= 100,
        "need >= 100 migrated connections, got {}",
        a.migrated
    );
    assert_eq!(a.servfails, 0, "this storm fits in memory");
    assert_eq!(a.queries, a.cold_served + a.warm_hits);

    // §3.3.1: "only one of them ever handles any given packet" — so every
    // parked client's HTTP exchange completes against the unikernel with
    // not a single payload byte lost or duplicated.
    assert_eq!(a.dropped_bytes, 0, "zero dropped payload bytes");
    assert_eq!(a.duplicated_bytes, 0, "zero duplicated payload bytes");
    assert_eq!(
        a.completed, a.cold_served,
        "every cold-served client finished its exchange byte-exact"
    );
    assert_eq!(
        a.replayed, a.queued_prepare,
        "every frame parked in a Prepare window was replayed"
    );
    assert_eq!(a.latency_count as u64, a.cold_served);
}

/// Golden counters for seed `0x4A0D`, pinned when the zero-copy frame path
/// landed: the `FrameBuf` refactor threads shared views from the bridge to
/// the unikernel, and this test proves the migrated-byte accounting did not
/// move by a single connection, byte or event in the process. If a future
/// change shifts these numbers it must be a deliberate behavioural change,
/// re-pinned in review — never an accidental side effect of buffer plumbing.
#[test]
fn storm_counters_match_the_pre_zero_copy_golden_values() {
    let a = run_storm();
    let golden = (
        a.queries,
        a.cold_served,
        a.warm_hits,
        a.migrated,
        a.queued_prepare,
        a.replayed,
        a.completed,
        a.dropped_bytes,
        a.duplicated_bytes,
        a.events,
    );
    assert_eq!(
        golden,
        (462, 147, 315, 146, 0, 0, 147, 0, 0, 1407),
        "handoff storm counters moved for seed {SEED:#x}"
    );
}

/// Run the identical storm as a one-board fleet on the sharded engine.
///
/// `board_seed(seed, 0) == seed` and a lone board keeps fail-over off, so
/// at *any* shard count this must reproduce [`run_storm`]'s world
/// bit-for-bit — the flat `Sim` is literally the 1-shard special case.
fn run_storm_sharded(shards: u32) -> Outcome {
    let mut sim: ShardedSim<ConcurrentJitsud> =
        ShardedSim::new(shards, SimDuration::from_millis(50));
    let world = ConcurrentJitsud::world(storm_config(), BoardKind::Cubieboard2.board(), SEED);
    let board = sim.add_domain(world, SEED);
    let mut rng = SimRng::seed_from_u64(SEED ^ 0x4A0D_0FF5);
    let mut t = 0.0;
    loop {
        t += rng.exponential(1.0 / RATE_PER_SEC);
        if t >= WINDOW_SECS as f64 {
            break;
        }
        let service = rng.index(SERVICES);
        let name = format!("svc{service:02}.handoff.example");
        jitsu_repro::jitsu::fleet::inject_query(
            &mut sim,
            board,
            SimTime::ZERO + SimDuration::from_secs_f64(t),
            &name,
        );
    }
    sim.run();
    let events = sim.events_executed();
    let m = sim.domain(board).metrics();
    Outcome {
        queries: m.queries,
        cold_served: m.cold_served,
        warm_hits: m.warm_hits,
        servfails: m.servfails,
        migrated: m.handoff.migrated,
        queued_prepare: m.handoff.queued_during_prepare,
        replayed: m.handoff.replayed_after_commit,
        completed: m.handoff.completed,
        dropped_bytes: m.handoff.dropped_bytes,
        duplicated_bytes: m.handoff.duplicated_bytes,
        latency_count: m.handoff.request_latency.count(),
        p50_bits: m.handoff.request_latency.p50_ms().to_bits(),
        p99_bits: m.handoff.request_latency.p99_ms().to_bits(),
        events,
    }
}

/// The PR's acceptance anchor: the sharded engine at 4 shards reproduces
/// the 1-shard (and flat-engine) golden counters for seed `0x4A0D`
/// bit-exactly — 462 queries, 146 migrated, 0 dropped, 0 duplicated.
#[test]
fn four_shard_storm_reproduces_the_flat_engine_golden_counters() {
    for shards in [1u32, 4] {
        let a = run_storm_sharded(shards);
        let golden = (
            a.queries,
            a.cold_served,
            a.warm_hits,
            a.migrated,
            a.queued_prepare,
            a.replayed,
            a.completed,
            a.dropped_bytes,
            a.duplicated_bytes,
            a.events,
        );
        assert_eq!(
            golden,
            (462, 147, 315, 146, 0, 0, 147, 0, 0, 1407),
            "sharded storm counters moved for seed {SEED:#x} at {shards} shards"
        );
    }
    // And the latency tail, down to the bit, against the flat engine.
    let flat = run_storm();
    let sharded = run_storm_sharded(4);
    assert_eq!(sharded.p50_bits, flat.p50_bits);
    assert_eq!(sharded.p99_bits, flat.p99_bits);
    assert_eq!(sharded.latency_count, flat.latency_count);
    assert_eq!(sharded.servfails, flat.servfails);
}

#[test]
fn handoff_storm_is_deterministic_under_a_fixed_seed() {
    let a = run_storm();
    let b = run_storm();
    assert_eq!(a.queries, b.queries);
    assert_eq!(a.migrated, b.migrated);
    assert_eq!(a.queued_prepare, b.queued_prepare);
    assert_eq!(a.replayed, b.replayed);
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.dropped_bytes, b.dropped_bytes);
    assert_eq!(a.duplicated_bytes, b.duplicated_bytes);
    assert_eq!(a.p50_bits, b.p50_bits);
    assert_eq!(a.p99_bits, b.p99_bits);
    assert_eq!(a.events, b.events);
}

/// Golden seed-stability for the rendered experiment (what `reproduce`
/// prints): two renders with the same seed must be byte-identical.
#[test]
fn handoff_storm_report_is_seed_stable() {
    let a = bench::handoff_storm::table(0x4A0D).render();
    let b = bench::handoff_storm::table(0x4A0D).render();
    assert_eq!(a, b);
    assert!(a.contains("migrated"));
    assert!(a.contains("dropped B"));
}
