//! Integration tests for the persistent-tree XenStore: O(1) snapshots,
//! structural sharing across the whole stack, commit-time transaction
//! merging under the interleavings parallel domain builds produce, and the
//! incremental quota accounting staying consistent with the reference walk
//! over a realistic toolstack workload.

use jitsu_repro::prelude::*;
use jitsu_repro::xenstore::{Error as XsError, Quota};

#[test]
fn transaction_snapshots_are_o1_even_on_large_stores() {
    let mut xs = XenStore::new(EngineKind::JitsuMerge);
    for i in 0..5_000 {
        xs.write(DomId::DOM0, None, &format!("/warm/b{}/k{i}", i % 32), b"v")
            .unwrap();
    }
    // Opening (and aborting) transactions on a 5000-node store is pure
    // pointer work: the live tree is never copied.
    let live_before = xs.tree().clone();
    for _ in 0..100 {
        let t = xs.transaction_start(DomId::DOM0).unwrap();
        xs.transaction_end(DomId::DOM0, t, false).unwrap();
    }
    assert!(
        xs.tree().shares_root_with(&live_before),
        "read-only transaction churn must not copy the tree"
    );
}

#[test]
fn parallel_domain_build_transactions_merge_with_zero_aborts() {
    // The Figure 3 interleaving, driven through the public store API: N
    // toolstack threads each build a domain inside a transaction, all
    // opened before any commits.
    let mut xs = XenStore::new(EngineKind::JitsuMerge);
    let n = 24;
    let mut open = Vec::new();
    for worker in 0..n {
        let t = xs.transaction_start(DomId::DOM0).unwrap();
        let home = format!("/local/domain/{}", 100 + worker);
        xs.write(DomId::DOM0, Some(t), &format!("{home}/name"), b"svc")
            .unwrap();
        xs.write(
            DomId::DOM0,
            Some(t),
            &format!("{home}/device/vif/0/state"),
            b"1",
        )
        .unwrap();
        open.push(t);
    }
    for t in open {
        xs.transaction_end(DomId::DOM0, t, true).unwrap();
    }
    let stats = xs.stats();
    assert_eq!(stats.conflicts, 0, "sibling domain creations never abort");
    assert_eq!(stats.commits, n as u64);
    assert_eq!(
        stats.merged,
        (n - 1) as u64,
        "every commit after the first lands on a moved base and merges"
    );
    for worker in 0..n {
        assert!(xs
            .exists(
                DomId::DOM0,
                None,
                &format!("/local/domain/{}/name", 100 + worker)
            )
            .unwrap());
    }
}

#[test]
fn the_serialising_engine_still_aborts_the_same_interleaving() {
    let mut xs = XenStore::new(EngineKind::Serial);
    let t1 = xs.transaction_start(DomId::DOM0).unwrap();
    let t2 = xs.transaction_start(DomId::DOM0).unwrap();
    xs.write(DomId::DOM0, Some(t1), "/local/domain/5/name", b"a")
        .unwrap();
    xs.write(DomId::DOM0, Some(t2), "/local/domain/6/name", b"b")
        .unwrap();
    xs.transaction_end(DomId::DOM0, t1, true).unwrap();
    assert_eq!(
        xs.transaction_end(DomId::DOM0, t2, true),
        Err(XsError::Again)
    );
    assert_eq!(xs.stats().merged, 0);
}

#[test]
fn merged_commits_fire_watches_from_the_merged_tree() {
    let mut xs = XenStore::new(EngineKind::JitsuMerge);
    xs.mkdir(DomId::DOM0, None, "/local/domain").unwrap();
    xs.watch(DomId(3), "/local/domain", "builds").unwrap();
    xs.take_watch_events(DomId(3));

    let t1 = xs.transaction_start(DomId::DOM0).unwrap();
    let t2 = xs.transaction_start(DomId::DOM0).unwrap();
    xs.write(DomId::DOM0, Some(t1), "/local/domain/7/name", b"a")
        .unwrap();
    xs.write(DomId::DOM0, Some(t2), "/local/domain/8/name", b"b")
        .unwrap();
    xs.transaction_end(DomId::DOM0, t1, true).unwrap();
    xs.transaction_end(DomId::DOM0, t2, true).unwrap();
    let paths: Vec<String> = xs
        .take_watch_events(DomId(3))
        .into_iter()
        .map(|e| e.path.to_string())
        .collect();
    // Each commit contributes exactly its net-new paths — the merged
    // commit's events come from the merged tree, not its raw write log.
    assert_eq!(
        paths,
        vec![
            "/local/domain/7",
            "/local/domain/7/name",
            "/local/domain/8",
            "/local/domain/8/name",
        ]
    );
}

#[test]
fn toolstack_workload_keeps_incremental_quota_counts_consistent() {
    // Drive a real toolstack through creates and destroys, then cross-check
    // the store's incremental per-domain counts against the O(n) walk.
    let mut ts = Toolstack::new(
        BoardKind::Cubieboard2.board(),
        EngineKind::JitsuMerge,
        0x1234,
    );
    let mut doms = Vec::new();
    for i in 0..4 {
        let report = ts
            .create_domain(
                jitsu_repro::xen::domain::DomainConfig::unikernel(format!("svc{i}")),
                BootOptimisations::jitsu(),
            )
            .unwrap();
        doms.push(report.dom);
    }
    ts.destroy(doms[1]).unwrap();
    ts.destroy(doms[2]).unwrap();
    for dom in [DomId::DOM0, doms[0], doms[3]] {
        assert_eq!(
            ts.xenstore.owned_nodes(dom),
            ts.xenstore.tree().owned_count(dom),
            "incremental count for {dom:?} diverged from the reference walk"
        );
    }
    assert_eq!(ts.xenstore_stats().conflicts, 0);
}

#[test]
fn guest_node_quota_is_enforced_from_the_incremental_counts() {
    let mut xs = XenStore::with_quota(EngineKind::JitsuMerge, Quota::tiny());
    xs.mkdir(DomId::DOM0, None, "/local/domain/9").unwrap();
    xs.set_perms(
        DomId::DOM0,
        None,
        "/local/domain/9",
        jitsu_repro::xenstore::Permissions::owned_by(DomId(9)),
    )
    .unwrap();
    let mut created = 0;
    loop {
        match xs.write(DomId(9), None, &format!("/local/domain/9/k{created}"), b"v") {
            Ok(()) => created += 1,
            Err(XsError::QuotaExceeded("nodes")) => break,
            Err(e) => panic!("unexpected error: {e}"),
        }
        assert!(created < 64, "the tiny quota must trip");
    }
    // Freeing nodes (subtree removal settles the counts) reopens headroom.
    xs.rm(DomId(9), None, "/local/domain/9/k0").unwrap();
    assert!(xs
        .write(DomId(9), None, "/local/domain/9/again", b"v")
        .is_ok());
}

#[test]
fn a_boot_storm_on_one_launch_slot_still_merges_its_registrations() {
    // End to end through the concurrent engine: even one launch slot
    // overlaps boot registrations with handoff flips and direct writes.
    let mut sim = ConcurrentJitsud::sim(
        JitsuConfig::new("merge.example")
            .with_service(ServiceConfig::http_site(
                "a.merge.example",
                Ipv4Addr::new(192, 168, 9, 20),
            ))
            .with_service(ServiceConfig::http_site(
                "b.merge.example",
                Ipv4Addr::new(192, 168, 9, 21),
            ))
            .with_launch_slots(2),
        BoardKind::Cubieboard2.board(),
        0xCAFE,
    );
    ConcurrentJitsud::inject_query(&mut sim, SimTime::ZERO, "a.merge.example");
    ConcurrentJitsud::inject_query(&mut sim, SimTime::from_millis(2), "b.merge.example");
    sim.run();
    let xs = sim.world().xenstore_stats();
    assert_eq!(xs.conflicts, 0);
    assert!(xs.merged > 0);
}
