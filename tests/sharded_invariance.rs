//! Property-based shard-count invariance: for random workloads, domain
//! counts and shard counts, a [`ShardedSim`] run is bit-for-bit identical
//! to the 1-shard run — same per-domain event order, same RNG draws, same
//! final world state, same engine counters.
//!
//! This is the tentpole guarantee of the sharded engine stated as a
//! property over *arbitrary* workloads, complementing the golden-counter
//! anchor in `tests/handoff_storm.rs` (one real workload, exact values).

use jitsu_repro::prelude::*;
use proptest::prelude::*;

/// A domain that records everything observable about its execution: the
/// virtual time, a workload tag and a fresh RNG draw per event, in order.
/// Two runs are indistinguishable iff these logs are equal.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Probe {
    log: Vec<(u64, u64, u64)>,
}

impl Domain for Probe {
    type Msg = (u64, u64);

    fn on_message(ctx: &mut DomainCtx<Probe>, (tag, ttl): (u64, u64)) {
        let draw = ctx.rng().uniform_u64(0, 1 << 30);
        let now = ctx.now().as_nanos();
        ctx.world_mut().log.push((now, tag, draw));
        if ttl > 0 {
            // Hop to a tag-dependent peer so message routing itself is
            // part of the randomized workload.
            let next =
                DomainId(((u64::from(ctx.id().0) + tag) % u64::from(ctx.domain_count())) as u32);
            ctx.send(next, (tag.wrapping_mul(31).wrapping_add(7), ttl - 1));
        }
    }
}

/// One injected stimulus: which domain, when, and a message seed.
#[derive(Debug, Clone)]
struct Op {
    dom: usize,
    at_ms: u64,
    tag: u64,
    ttl: u64,
}

fn arb_op() -> impl Strategy<Value = Op> {
    any::<[u64; 4]>().prop_map(|[a, b, c, d]| Op {
        dom: (a % 8) as usize,
        at_ms: b % 400,
        tag: c % 1024,
        ttl: d % 4,
    })
}

/// One event as the probe observed it: (virtual time ns, tag, RNG draw).
type LogEntry = (u64, u64, u64);

/// Run the workload at the given shard count and return everything
/// observable: per-domain logs, events executed, barrier count.
fn run(domains: usize, shards: u32, ops: &[Op]) -> (Vec<Vec<LogEntry>>, u64, u64) {
    let mut sim: ShardedSim<Probe> = ShardedSim::new(shards, SimDuration::from_millis(10));
    let ids: Vec<DomainId> = (0..domains)
        .map(|d| sim.add_domain(Probe::default(), 0x5A4D ^ (d as u64) << 8))
        .collect();
    for op in ops {
        let id = ids[op.dom % domains];
        let (tag, ttl) = (op.tag, op.ttl);
        sim.schedule_at(id, SimTime::from_millis(op.at_ms), move |ctx| {
            Probe::on_message(ctx, (tag, ttl));
        });
    }
    sim.run();
    let events = sim.events_executed();
    let barriers = sim.barriers();
    let logs = sim.into_worlds().into_iter().map(|w| w.log).collect();
    (logs, events, barriers)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn any_workload_is_invariant_across_shard_counts(
        domains in 1usize..8,
        ops in proptest::collection::vec(arb_op(), 1..40),
    ) {
        let one = run(domains, 1, &ops);
        for shards in [2u32, 4, 8] {
            let n = run(domains, shards, &ops);
            prop_assert_eq!(&n, &one);
        }
    }

    #[test]
    fn runs_are_reproducible_at_every_shard_count(
        domains in 1usize..6,
        ops in proptest::collection::vec(arb_op(), 1..24),
        shards in prop_oneof![Just(1u32), Just(2u32), Just(4u32), Just(8u32)],
    ) {
        let a = run(domains, shards, &ops);
        let b = run(domains, shards, &ops);
        prop_assert_eq!(a, b);
    }
}
