//! Cross-crate integration tests for the substrate layers: the optimised
//! toolstack over XenStore (Figures 3/4) and Conduit rendezvous + vchan over
//! the hypervisor primitives (§3.2).

use jitsu_repro::conduit::rendezvous::ConduitRegistry;
use jitsu_repro::conduit::vchan::Side;
use jitsu_repro::prelude::*;
use jitsu_repro::xen::domain::DomainConfig;

#[test]
fn toolstack_domain_lifecycle_keeps_xenstore_and_bridge_consistent() {
    let mut ts = Toolstack::new(BoardKind::Cubieboard2.board(), EngineKind::JitsuMerge, 9);
    let mut doms = Vec::new();
    for i in 0..4 {
        let report = ts
            .create_domain(
                DomainConfig::unikernel(format!("svc-{i}")),
                BootOptimisations::jitsu(),
            )
            .unwrap();
        ts.unpause(report.dom).unwrap();
        doms.push(report.dom);
    }
    assert_eq!(ts.bridge.port_count(), 4);
    assert_eq!(ts.domains().count(), 4);
    for (i, dom) in doms.iter().enumerate() {
        let name = ts
            .xenstore
            .read_string(DomId::DOM0, None, &format!("/local/domain/{}/name", dom.0))
            .unwrap();
        assert_eq!(name, format!("svc-{i}"));
    }
    // Destroy everything; the host ends clean.
    for dom in doms {
        ts.destroy(dom).unwrap();
    }
    assert_eq!(ts.bridge.port_count(), 0);
    assert_eq!(ts.domains().count(), 0);
    assert_eq!(ts.xenstore.open_transactions(), 0);
}

#[test]
fn optimised_toolstack_is_faster_for_every_memory_size() {
    let mut ts = Toolstack::new(BoardKind::Cubieboard2.board(), EngineKind::JitsuMerge, 10);
    for mem in [16u32, 64, 256] {
        let vanilla = ts
            .measure_create(
                DomainConfig::unikernel("v").with_memory_mib(mem),
                BootOptimisations::vanilla(),
            )
            .unwrap();
        let optimised = ts
            .measure_create(
                DomainConfig::unikernel("o").with_memory_mib(mem),
                BootOptimisations::jitsu(),
            )
            .unwrap();
        assert!(
            optimised < vanilla,
            "mem={mem}MiB: optimised {optimised} must beat vanilla {vanilla}"
        );
    }
}

#[test]
fn conduit_rendezvous_runs_over_the_toolstacks_own_tables() {
    // Build two "unikernels" with the real toolstack and connect them with a
    // conduit using the same XenStore, grant tables and event channels the
    // toolstack manages — the multilingual-proxy scenario of §5.
    let mut ts = Toolstack::new(BoardKind::Cubieboard2.board(), EngineKind::JitsuMerge, 11);
    let server = ts
        .create_domain(
            DomainConfig::unikernel("http_server"),
            BootOptimisations::jitsu(),
        )
        .unwrap()
        .dom;
    let client = ts
        .create_domain(
            DomainConfig::unikernel("php_backend"),
            BootOptimisations::jitsu(),
        )
        .unwrap()
        .dom;
    ts.unpause(server).unwrap();
    ts.unpause(client).unwrap();

    let mut registry = ConduitRegistry::new();
    registry
        .register(&mut ts.xenstore, "http_server", server)
        .unwrap();
    ConduitRegistry::connect(&mut ts.xenstore, client, "http_server", "conn1").unwrap();
    let mut accepted = registry
        .accept(
            &mut ts.xenstore,
            &mut ts.grants,
            &mut ts.event_channels,
            "http_server",
            server,
        )
        .unwrap();
    assert_eq!(accepted.len(), 1);
    let conn = &mut accepted[0];
    assert_eq!(conn.client, client);

    // Proxy a request across the shared-memory channel, no bridge involved.
    conn.channel
        .write(
            Side::Client,
            b"GET /generated-by-php HTTP/1.1\r\n\r\n",
            &mut ts.event_channels,
        )
        .unwrap();
    let request = conn.channel.read(Side::Server, 128).unwrap();
    assert!(request.starts_with(b"GET /generated-by-php"));
    conn.channel
        .write(
            Side::Server,
            b"HTTP/1.1 200 OK\r\ncontent-length: 2\r\n\r\nok",
            &mut ts.event_channels,
        )
        .unwrap();
    let response = conn.channel.read(Side::Client, 128).unwrap();
    assert!(response.starts_with(b"HTTP/1.1 200 OK"));

    // Flow metadata is visible to management tools in the store.
    let flows = ts
        .xenstore
        .directory(DomId::DOM0, None, "/conduit/flows")
        .unwrap();
    assert_eq!(flows.len(), 1);
}

#[test]
fn parallel_domain_creation_conflicts_depend_on_the_store_engine() {
    // The Figure 3 effect surfaced through the toolstack API: two toolstack
    // transactions building different domains commit concurrently.
    for (engine, expect_conflict) in [
        (EngineKind::Serial, true),
        (EngineKind::Merge, true),
        (EngineKind::JitsuMerge, false),
    ] {
        let mut xs = XenStore::new(engine);
        let t1 = xs.transaction_start(DomId::DOM0).unwrap();
        let t2 = xs.transaction_start(DomId::DOM0).unwrap();
        xs.write(DomId::DOM0, Some(t1), "/local/domain/5/name", b"a")
            .unwrap();
        xs.write(DomId::DOM0, Some(t2), "/local/domain/6/name", b"b")
            .unwrap();
        xs.transaction_end(DomId::DOM0, t1, true).unwrap();
        let second = xs.transaction_end(DomId::DOM0, t2, true);
        assert_eq!(second.is_err(), expect_conflict, "{engine:?}");
    }
}

#[test]
fn unikernel_instances_serve_http_over_simulated_bridge_frames() {
    use jitsu_repro::netstack::iface::{IfaceEvent, Interface};
    use jitsu_repro::unikernel::appliance::StaticSiteAppliance;
    use jitsu_repro::unikernel::instance::UnikernelInstance;

    let service_ip = Ipv4Addr::new(192, 168, 1, 40);
    let service_mac = MacAddr([6, 0x16, 0x3e, 0, 0, 0x40]);
    let mut instance = UnikernelInstance::new(
        UnikernelImage::mirage("docs.family.name"),
        service_mac,
        service_ip,
        80,
        Box::new(StaticSiteAppliance::new("docs.family.name")),
        99,
    );
    let client_ip = Ipv4Addr::new(192, 168, 1, 100);
    let client_mac = MacAddr([2, 0, 0, 0, 0, 0x64]);
    let mut client = Interface::new(client_mac, client_ip);
    client.add_arp_entry(service_ip, service_mac);
    instance.iface.add_arp_entry(client_ip, client_mac);

    // Handshake.
    let mut to_server = vec![client.tcp_connect(service_ip, 80)];
    for _ in 0..8 {
        let mut to_client = Vec::new();
        for f in to_server.drain(..) {
            let (out, _) = instance.handle_frame(&f);
            to_client.extend(out);
        }
        for f in to_client {
            let (out, _) = client.handle_frame(&f);
            to_server.extend(out);
        }
        if to_server.is_empty() {
            break;
        }
    }
    // Request/response.
    let req = client
        .tcp_send(
            (service_ip, 80),
            49152,
            HttpRequest::get("/", "docs.family.name").emit(),
        )
        .unwrap();
    let (frames, _) = instance.handle_frame(&req);
    let mut body = Vec::new();
    for f in frames {
        let (_, events) = client.handle_frame(&f);
        for ev in events {
            if let IfaceEvent::TcpData { data, .. } = ev {
                body.extend_from_slice(&data);
            }
        }
    }
    let response = HttpResponse::parse(&body.into()).unwrap().unwrap();
    assert_eq!(response.status, 200);
    assert!(String::from_utf8_lossy(&response.body).contains("docs.family.name"));
}
