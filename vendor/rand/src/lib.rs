//! A minimal, dependency-free stand-in for the `rand` crate.
//!
//! The build environment for this repository has no network access to
//! crates.io, so the subset of the `rand` API the workspace actually uses is
//! vendored here: [`RngCore`], [`SeedableRng`], [`Rng`] (with `gen` and
//! `gen_range`), and [`rngs::StdRng`]. `StdRng` is a xoshiro256** generator
//! seeded through SplitMix64 — deterministic for a given seed, which is all
//! the simulation needs (every experiment is seeded explicitly).

#![forbid(unsafe_code)]

use core::fmt;
use core::ops::{Range, RangeInclusive};

/// Error type mirroring `rand::Error`. The vendored generators are
/// infallible, so this is never actually constructed.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("rand error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator, mirroring `rand_core::RngCore`.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// A generator constructible from a fixed-size seed, mirroring
/// `rand_core::SeedableRng`.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// A type that `Rng::gen` can produce uniformly from raw generator output.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {
        $(impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        })*
    };
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range usable with `Rng::gen_range`, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {
        $(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "empty range in gen_range");
                    let span = (self.end - self.start) as u128;
                    self.start + (rng.next_u64() as u128 % span) as $t
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range in gen_range");
                    let span = (hi - lo) as u128 + 1;
                    lo + (((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span) as $t
                }
            }
        )*
    };
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        // Continuous sampling: the closed upper bound is reachable only up
        // to rounding, which matches how uniform float ranges behave in the
        // real crate closely enough for property-test strategies.
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Convenience methods layered over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic xoshiro256** generator standing in for `rand`'s
    /// `StdRng`. Not the same stream as upstream `StdRng` (which is
    /// ChaCha-based), but the workspace only relies on determinism for a
    /// given seed, not on a specific stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9e37_79b9_7f4a_7c15,
                    0xbf58_476d_1ce4_e5b9,
                    0x94d0_49bb_1331_11eb,
                    0x2545_f491_4f6c_dd1d,
                ];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u64 = r.gen_range(10u64..=20);
            assert!((10..=20).contains(&x));
            let y: usize = r.gen_range(0usize..7);
            assert!(y < 7);
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = StdRng::seed_from_u64(2);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
