//! A minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so the subset
//! of the proptest API this workspace uses is vendored here: the
//! [`strategy::Strategy`] trait with `prop_map`, `any::<T>()`, `Just`,
//! integer-range and regex-character-class string strategies,
//! `collection::vec`, and the `proptest!` / `prop_assert*` / `prop_oneof!`
//! macros. Generation is purely random (deterministically seeded per test);
//! there is no shrinking — a failing case panics with the generated inputs'
//! debug representation via the assertion message.

#![forbid(unsafe_code)]

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Configuration for a `proptest!` block, mirroring
    /// `proptest::test_runner::Config`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the runner draws a fresh case.
        Reject,
        /// A `prop_assert*!` failed; the runner panics with this message.
        Fail(String),
    }

    /// Deterministic RNG used to generate test cases. Seeded from the test
    /// name so every run of a given test explores the same inputs.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        pub fn deterministic(name: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for byte in name.bytes() {
                seed ^= byte as u64;
                seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                inner: StdRng::seed_from_u64(seed),
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }

        /// Uniform in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }

        /// Uniform draw from a range, delegating to the vendored `rand`
        /// crate so there is exactly one range-sampling implementation.
        pub fn sample_range<T, S: rand::SampleRange<T>>(&mut self, range: S) -> T {
            use rand::Rng as _;
            self.inner.gen_range(range)
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;

    /// A generator of values of one type, mirroring
    /// `proptest::strategy::Strategy` (without shrinking).
    pub trait Strategy {
        type Value;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, f }
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn new_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// The result of [`Strategy::prop_filter`]. Rejection is handled by
    /// re-drawing; a pathological filter that rejects everything panics
    /// after a bounded number of attempts.
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;

        fn new_value(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let value = self.inner.new_value(rng);
                if (self.f)(&value) {
                    return value;
                }
            }
            panic!("prop_filter rejected 1000 consecutive draws");
        }
    }

    /// Chooses uniformly among boxed strategies, backing `prop_oneof!`.
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].new_value(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {
            $(
                impl Strategy for ::core::ops::Range<$t> {
                    type Value = $t;

                    fn new_value(&self, rng: &mut TestRng) -> $t {
                        rng.sample_range(self.clone())
                    }
                }

                impl Strategy for ::core::ops::RangeInclusive<$t> {
                    type Value = $t;

                    fn new_value(&self, rng: &mut TestRng) -> $t {
                        rng.sample_range(self.clone())
                    }
                }
            )*
        };
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, f64);

    /// String strategies from a regex subset: one character class with a
    /// repetition count, e.g. `"[a-z0-9._-]{1,12}"`. This covers every
    /// pattern the workspace's property tests use.
    impl Strategy for &str {
        type Value = String;

        fn new_value(&self, rng: &mut TestRng) -> String {
            let (chars, lo, hi) = parse_class_pattern(self);
            let len = lo + (rng.below((hi - lo + 1) as u64) as usize);
            (0..len)
                .map(|_| chars[rng.below(chars.len() as u64) as usize])
                .collect()
        }
    }

    fn parse_class_pattern(pattern: &str) -> (Vec<char>, usize, usize) {
        let inner = pattern.strip_prefix('[').unwrap_or_else(|| {
            panic!("unsupported string pattern {pattern:?}: expected `[class]{{m,n}}`")
        });
        let (class, rest) = inner
            .split_once(']')
            .unwrap_or_else(|| panic!("unsupported string pattern {pattern:?}: missing `]`"));
        let mut chars = Vec::new();
        let mut it = class.chars().peekable();
        while let Some(c) = it.next() {
            if it.peek() == Some(&'-') {
                let mut look = it.clone();
                look.next();
                // `a-z` style range (a trailing `-` stays literal).
                if let Some(&end) = look.peek() {
                    it = look;
                    it.next();
                    for code in c as u32..=end as u32 {
                        if let Some(ch) = char::from_u32(code) {
                            chars.push(ch);
                        }
                    }
                    continue;
                }
            }
            chars.push(c);
        }
        assert!(!chars.is_empty(), "empty character class in {pattern:?}");
        let counts = rest
            .strip_prefix('{')
            .and_then(|r| r.strip_suffix('}'))
            .unwrap_or_else(|| panic!("unsupported repetition in {pattern:?}: expected `{{m,n}}`"));
        let (lo, hi) = match counts.split_once(',') {
            Some((lo, hi)) => (lo.parse().unwrap(), hi.parse().unwrap()),
            None => {
                let n = counts.parse().unwrap();
                (n, n)
            }
        };
        assert!(lo <= hi, "bad repetition bounds in {pattern:?}");
        (chars, lo, hi)
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Types with a canonical "any value" strategy, mirroring
    /// `proptest::arbitrary::Arbitrary`.
    pub trait Arbitrary: Sized {
        fn generate(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {
            $(impl Arbitrary for $t {
                fn generate(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            })*
        };
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn generate(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for char {
        fn generate(rng: &mut TestRng) -> Self {
            // Printable ASCII keeps generated text debuggable.
            (0x20u8 + rng.below(0x5f) as u8) as char
        }
    }

    impl<T: Arbitrary + Default + Copy, const N: usize> Arbitrary for [T; N] {
        fn generate(rng: &mut TestRng) -> Self {
            let mut out = [T::default(); N];
            for slot in out.iter_mut() {
                *slot = T::generate(rng);
            }
            out
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T> {
        _marker: core::marker::PhantomData<fn() -> T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            T::generate(rng)
        }
    }

    /// `any::<T>()` — the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: core::marker::PhantomData,
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use core::ops::Range;

    /// Element-count specification for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// `proptest::collection::vec` — a vector of `element` values with a
    /// length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Runs each contained `#[test] fn name(arg in strategy, ...)` against
/// `cases` generated inputs (default 256, override with
/// `#![proptest_config(...)]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($config:expr; $( $(#[$attr:meta])* fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                let mut passed: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(20).max(20);
                while passed < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= max_attempts,
                        "proptest: too many rejected cases in {} ({} attempts for {} passes)",
                        stringify!($name), attempts, passed,
                    );
                    #[allow(unused_imports)]
                    use $crate::strategy::Strategy as _;
                    $(let $arg = ($strategy).new_value(&mut rng);)+
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    match outcome {
                        ::core::result::Result::Ok(()) => passed += 1,
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("proptest case failed in {}: {}", stringify!($name), msg);
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
}

/// Fails the current case if the two values compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `left != right`\n  both: `{:?}`",
            left
        );
    }};
}

/// Rejects the current case (the runner draws fresh inputs) unless the
/// condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Chooses uniformly among the given strategies, all producing one type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $(::std::boxed::Box::new($strategy)
                as ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,)+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_patterns_match_their_class() {
        let mut rng = crate::test_runner::TestRng::deterministic("string_patterns");
        for _ in 0..200 {
            let s = "[a-z0-9]{1,12}".new_value(&mut rng);
            assert!((1..=12).contains(&s.len()));
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
            let t = "[a-zA-Z0-9_.@:-]{1,16}".new_value(&mut rng);
            assert!((1..=16).contains(&t.len()));
            assert!(t
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || "_.@:-".contains(c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 1u8..=255, y in 0usize..20, z in any::<u32>()) {
            prop_assert!(x >= 1);
            prop_assert!(y < 20);
            let _ = z;
        }

        #[test]
        fn vec_lengths_respect_size(v in crate::collection::vec(any::<u8>(), 0..512)) {
            prop_assert!(v.len() < 512);
        }

        #[test]
        fn oneof_and_assume_compose(pick in prop_oneof![Just(1u8), Just(2u8), Just(3u8)], other in 0u8..=9) {
            prop_assume!(other != 5);
            prop_assert!(matches!(pick, 1u8..=3));
            prop_assert_ne!(other, 5);
        }
    }
}
