//! A minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so the subset
//! of the criterion API the workspace's benches use is vendored here:
//! [`Criterion`], [`BenchmarkId`], benchmark groups with `sample_size`,
//! `bench_function` / `bench_with_input`, `Bencher::iter`, [`black_box`],
//! and the `criterion_group!` / `criterion_main!` macros. Each benchmark is
//! timed with `std::time::Instant` over a fixed-duration measurement loop
//! and reported as mean ns/iter on stdout — enough for relative comparisons
//! between engines, not a statistics suite.

#![forbid(unsafe_code)]
// The workspace clippy.toml disallows wall-clock time everywhere else;
// measuring wall time is this crate's entire purpose.
#![allow(clippy::disallowed_methods, clippy::disallowed_types)]

use std::fmt;
use std::time::{Duration, Instant};

/// An opaque identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Prevents the optimiser from deleting a computation whose result is
/// otherwise unused.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Passed to benchmark closures; its [`iter`](Bencher::iter) method runs and
/// times the routine under measurement.
pub struct Bencher {
    sample_size: usize,
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: one untimed call, then calibrate a batch that runs long
        // enough for Instant to resolve it.
        black_box(routine());
        let budget = Duration::from_millis(2 * self.sample_size as u64);
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < budget {
            black_box(routine());
            iters += 1;
        }
        let total = start.elapsed();
        self.iters = iters.max(1);
        self.mean_ns = total.as_nanos() as f64 / self.iters as f64;
    }
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(None, &id.into(), 10, f);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(Some(&self.name), &id.into(), self.sample_size, f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        run_one(Some(&self.name), &id, self.sample_size, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnOnce(&mut Bencher)>(
    group: Option<&str>,
    id: &BenchmarkId,
    sample_size: usize,
    f: F,
) {
    let mut bencher = Bencher {
        sample_size,
        mean_ns: 0.0,
        iters: 0,
    };
    f(&mut bencher);
    let full_name = match group {
        Some(group) => format!("{}/{}", group, id),
        None => id.to_string(),
    };
    println!(
        "bench {:<50} {:>14.1} ns/iter ({} iters)",
        full_name, bencher.mean_ns, bencher.iters
    );
}

/// Collects benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` for a bench binary built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_infrastructure_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(1);
        let mut count = 0u64;
        group.bench_function("increment", |b| b.iter(|| count += 1));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
        c.bench_function("top_level", |b| b.iter(|| black_box(1 + 1)));
        assert!(count > 0);
    }
}
