//! Personal-data photo vault: keep the data at home, summon the service
//! that touches it (§5 "Yet other application scenarios ... such as a
//! family's photos").
//!
//! Run with `cargo run --example photo_vault`. The photos live on the
//! board's storage; a queue-style unikernel appliance is summoned when the
//! family wants to browse, serves the (storage-bound) requests, and is
//! retired afterwards — the decryption keys and the data never leave the
//! house. The example also reports what the always-on board costs in power
//! against keeping the same service on an x86 NUC.

use jitsu_repro::prelude::*;
use jitsu_repro::sim::SimRng;
use jitsu_repro::unikernel::appliance::Appliance;

fn main() {
    // --- Summon the vault service on demand -------------------------------
    let config = JitsuConfig::new("family.name").with_service(ServiceConfig::http_site(
        "photos.family.name",
        Ipv4Addr::new(192, 168, 1, 30),
    ));
    let mut jitsud = Jitsud::new(config, BoardKind::Cubieboard2.board(), 11);
    let viewer = Ipv4Addr::new(192, 168, 1, 101);
    let cold = jitsud
        .cold_start_request("photos.family.name", viewer, "/")
        .expect("vault summoned");
    println!(
        "photo vault summoned: HTTP {} in {}",
        cold.http_status, cold.http_response_time
    );

    // --- Serve an album from local storage --------------------------------
    // The album is larger than RAM, so the appliance streams it from the
    // board's storage; the SD card bounds throughput exactly as in the §4
    // throughput experiment.
    let mut rng = SimRng::seed_from_u64(5);
    let mut vault = QueueAppliance::new("photos.family.name", StorageKind::SdCard.device());
    let photo_bytes = 3 * 1024 * 1024; // a 3 MB JPEG
    vault.preload(40, photo_bytes);
    let mut total = SimDuration::ZERO;
    let mut served = 0u64;
    while !vault.is_empty() {
        let (resp, cost) =
            vault.handle(&HttpRequest::get("/photo", "photos.family.name"), &mut rng);
        assert_eq!(resp.status, 200);
        served += resp.body.len() as u64;
        total += cost;
    }
    let mbps = served as f64 * 8.0 / total.as_secs_f64() / 1e6;
    println!(
        "served {} photos ({} MB) from the SD card in {} — {:.1} Mb/s",
        40,
        served / (1024 * 1024),
        total,
        mbps
    );

    // --- What does keeping this at home cost? ------------------------------
    let arm = PowerModel::for_board(BoardKind::Cubieboard2);
    let nuc = PowerModel::for_board(BoardKind::IntelNuc);
    let day = 24.0 * 3600.0;
    let arm_kwh = arm.energy_joules(
        PowerState::Idle,
        &[PowerComponent::Ethernet, PowerComponent::Ssd],
        day,
    ) / 3.6e6;
    let nuc_kwh = nuc.energy_joules(PowerState::Idle, &[], day) / 3.6e6;
    println!(
        "always-on cost: Cubieboard2+SSD {:.2} kWh/day vs Intel NUC {:.2} kWh/day ({:.1}x)",
        arm_kwh,
        nuc_kwh,
        nuc_kwh / arm_kwh
    );
    assert!(nuc_kwh > arm_kwh);
    assert!((30.0..90.0).contains(&mbps));
}
