//! Edge hosting: a family's personal web sites served from one ARM board
//! (§3.3.2 and §5 of the paper).
//!
//! Run with `cargo run --example edge_hosting`. The board is the
//! authoritative nameserver for `family.name`; each family member's
//! low-traffic site is a separate 16 MiB unikernel that is summoned on
//! demand and retired after two minutes of idleness, so the 1 GB board can
//! host far more sites than it could keep resident.

use jitsu_repro::prelude::*;

fn main() {
    let members = ["alice", "bob", "carol", "dave", "erin"];
    let mut config = JitsuConfig::new("family.name");
    config.idle_timeout = Some(SimDuration::from_secs(120));
    for (i, member) in members.iter().enumerate() {
        config = config.with_service(ServiceConfig::http_site(
            &format!("{member}.family.name"),
            Ipv4Addr::new(192, 168, 1, 20 + i as u8),
        ));
    }
    let mut jitsud = Jitsud::new(config, BoardKind::Cubieboard2.board(), 7);
    let client = Ipv4Addr::new(192, 168, 1, 100);

    println!(
        "Hosting {} personal sites on one Cubieboard2\n",
        members.len()
    );
    println!("{:<22} {:>14} {:>14}", "site", "cold start", "warm request");
    for member in members {
        let name = format!("{member}.family.name");
        let cold = jitsud
            .cold_start_request(&name, client, "/")
            .expect("cold start");
        let warm = jitsud
            .warm_request(&name, client, "/")
            .expect("warm request");
        assert_eq!(cold.http_status, 200);
        assert_eq!(warm.http_status, 200);
        println!(
            "{:<22} {:>14} {:>14}",
            name,
            cold.http_response_time.to_string(),
            warm.response_time.to_string()
        );
    }
    println!("\nRunning unikernels: {}", jitsud.running_count());

    // Two minutes later, nobody has visited: the sites are retired and the
    // memory is reclaimed for whoever comes next.
    jitsud.advance_clock(SimDuration::from_secs(180));
    let retired = jitsud.retire_idle();
    println!("Retired after 3 idle minutes: {}", retired.join(", "));
    println!("Running unikernels now: {}", jitsud.running_count());
    assert_eq!(jitsud.running_count(), 0);

    // The next visitor simply pays the ~300 ms cold start again.
    let again = jitsud
        .cold_start_request("alice.family.name", client, "/")
        .expect("resummon");
    println!(
        "\nalice.family.name resummoned on demand: HTTP {} in {}",
        again.http_status, again.http_response_time
    );
}
