//! IoT front-end: why moving protocol parsing into memory-safe unikernels
//! matters (§5 "Use cases" and Table 2).
//!
//! Run with `cargo run --example iot_firewall`. The example plays both
//! roles: it prints the CVE analysis behind Table 2 (which classes of bug a
//! Jitsu deployment removes), then demonstrates the narrow attack surface in
//! practice by throwing malformed protocol traffic at the memory-safe stack
//! and showing it is rejected by parsers rather than reaching application
//! logic.

use jitsu_repro::netstack::dns::DnsMessage;
use jitsu_repro::netstack::http::HttpRequest;
use jitsu_repro::netstack::ipv4::Ipv4Packet;
use jitsu_repro::netstack::tcp::TcpSegment;
use jitsu_repro::prelude::*;
use jitsu_repro::security::{classify, summary, JitsuImpact, CVE_DATASET};

fn main() {
    println!("== Table 2: what a Jitsu front-end eliminates ==\n");
    println!(
        "{:<18} {:>6} {:>11} {:>10}",
        "layer", "CVEs", "eliminated", "remaining"
    );
    for s in summary() {
        println!(
            "{:<18} {:>6} {:>11} {:>10}",
            s.component.label(),
            s.total,
            s.eliminated,
            s.remaining
        );
    }
    let remaining: Vec<&str> = CVE_DATASET
        .iter()
        .filter(|c| classify(c) == JitsuImpact::StillApplicable)
        .map(|c| c.id)
        .collect();
    println!(
        "\nStill in the trusted computing base: {}",
        remaining.join(", ")
    );

    println!("\n== Malformed traffic against the memory-safe stack ==\n");
    let src = Ipv4Addr::new(10, 0, 0, 66);
    let dst = Ipv4Addr::new(192, 168, 1, 20);

    // A truncated IPv4 header, an overflow-length TCP segment and a
    // garbage DNS/HTTP payload: each is rejected as data, not executed.
    let cases: Vec<(&str, bool)> = vec![
        (
            "truncated IPv4 header",
            Ipv4Packet::parse(&(&[0x45u8, 0, 0]).into()).is_err(),
        ),
        ("TCP segment with corrupt checksum", {
            let mut seg = TcpSegment::control(1, 80, 1, 0, jitsu_repro::netstack::TcpFlags::SYN)
                .emit(src, dst)
                .to_vec();
            seg[16] ^= 0xff;
            TcpSegment::parse(&seg.into(), src, dst).is_err()
        }),
        ("DNS message with a compression bomb pointer", {
            let mut q = DnsMessage::query(1, "legit.family.name").emit();
            q[12] = 0xc0;
            DnsMessage::parse(&q).is_err()
        }),
        (
            "HTTP request line from a fuzzer",
            HttpRequest::parse(&b"\x00\x01\x02GET\x00/ HTTP/9.9\r\n\r\n".into()).is_err(),
        ),
    ];
    for (what, rejected) in &cases {
        println!(
            "  {:<44} {}",
            what,
            if *rejected {
                "rejected safely"
            } else {
                "ACCEPTED (!)"
            }
        );
    }
    assert!(cases.iter().all(|(_, rejected)| *rejected));

    println!("\n== The legacy device behind the firewall ==\n");
    // The legacy firmware is reachable only through the unikernel front-end,
    // which forwards only well-formed requests for the one allowed path.
    let allowed = HttpRequest::get("/status", "camera.family.name");
    let blocked = HttpRequest::get("/cgi-bin/../../etc/passwd", "camera.family.name");
    let forward = |req: &HttpRequest| req.path == "/status" && req.method == "GET";
    println!(
        "  GET /status                         -> forwarded: {}",
        forward(&allowed)
    );
    println!(
        "  GET /cgi-bin/../../etc/passwd       -> forwarded: {}",
        forward(&blocked)
    );
    assert!(forward(&allowed));
    assert!(!forward(&blocked));
}
