//! Quickstart: summon a unikernel in response to its first HTTP request.
//!
//! Run with `cargo run --example quickstart`. This walks the paper's core
//! flow end to end on the simulated Cubieboard2: a DNS query for
//! `alice.family.name` triggers the launch, Synjitsu proxies the client's
//! TCP connection while the unikernel boots, the connection state is handed
//! over through XenStore, and the freshly booted unikernel answers the
//! buffered request. A second, warm request then completes in a few
//! milliseconds.

use jitsu_repro::prelude::*;

fn main() {
    let config = JitsuConfig::new("family.name").with_service(ServiceConfig::http_site(
        "alice.family.name",
        Ipv4Addr::new(192, 168, 1, 20),
    ));
    let mut jitsud = Jitsud::new(config, BoardKind::Cubieboard2.board(), 42);
    let client = Ipv4Addr::new(192, 168, 1, 100);

    println!("== Cold start: first request summons the unikernel ==");
    let cold = jitsud
        .cold_start_request("alice.family.name", client, "/")
        .expect("cold start");
    println!("  DNS answered in        {}", cold.dns_response_time);
    println!("  unikernel ready after  {}", cold.unikernel_ready_after);
    println!(
        "  HTTP {} received after {}",
        cold.http_status, cold.http_response_time
    );
    println!("  proxied by Synjitsu:   {}", cold.proxied);

    println!("\n== Warm request: the unikernel is already running ==");
    let warm = jitsud
        .warm_request("alice.family.name", client, "/")
        .expect("warm request");
    println!(
        "  HTTP {} received after {}",
        warm.http_status, warm.response_time
    );

    println!("\n== Control-plane trace (Figure 6's flow) ==");
    print!("{}", jitsud.tracer.render());

    assert_eq!(cold.http_status, 200);
    assert_eq!(warm.http_status, 200);
    assert!(warm.response_time < cold.http_response_time);
}
